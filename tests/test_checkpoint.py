"""Checkpoint/restore: byte-identical deterministic resume.

The subsystem's defining invariant (DESIGN.md §10): for any workload,
mechanism and snapshot cycle, save → kill → load → run-to-end produces
``SimStats`` byte-identical to the uninterrupted run.  These tests pin
it three ways:

* **directed boundary snapshots** — the checkpoint lands in the states
  most likely to be serialized wrong: mid-burst, with a refresh
  drain pending, with the write queue straddling the Burst_TH
  threshold (51/52/53 of 64), and one cycle before a gated schedule
  pass wakes;
* **a hypothesis property** — random workload × random snapshot point
  × every mechanism, open loop, both FASTFWD modes, oracle attached;
* **mismatch rejection** — schema drift, config drift, wrong
  mechanism/driver/FSB topology and truncated files all raise typed
  :class:`~repro.errors.CheckpointMismatchError` instead of quietly
  resuming into garbage.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    SCHEMA_VERSION,
    Checkpointer,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from repro.controller.access import AccessType
from repro.controller.registry import extension_names, mechanism_names
from repro.controller.system import MemorySystem
from repro.cpu.core import OoOCore
from repro.cpu.inorder import InOrderCore
from repro.dram.timing import DDR2_800
from repro.errors import CheckpointMismatchError
from repro.mapping.base import DecodedAddress
from repro.sim.config import baseline_config
from repro.sim.engine import FleetDriver, OpenLoopDriver, run_requests_resumed
from repro.sim.fsb import FSBAdapter
from repro.workloads.fleet import make_fleet_requests
from repro.workloads.spec2000 import make_benchmark_trace

from tests.test_engine_fastfwd import (
    QUIET,
    _config,
    _encode,
    fastfwd,
    workloads,
)

ALL_MECHANISMS = list(mechanism_names()) + list(extension_names())

FAST_REFRESH = replace(DDR2_800, tREFI=150, tRFC=20)


def _stats_blob(system) -> str:
    return json.dumps(system.stats.to_dict(), sort_keys=True)


def _roundtrip_at(tmp_path, config, mechanism, requests, predicate,
                  oracle=False):
    """Snapshot the first cycle ``predicate(driver)`` holds; assert the
    resumed run matches the uninterrupted one byte for byte.

    Saving has no side effects, so the snapshotted driver itself runs
    on to completion and serves as the reference.
    """
    system = MemorySystem(config, mechanism, oracle=oracle)
    driver = OpenLoopDriver(system, list(requests))
    hit = False
    while not driver.done:
        if predicate(driver):
            hit = True
            break
        driver.step()
    assert hit, "workload never reached the targeted boundary state"
    path = tmp_path / "boundary.ckpt"
    save_checkpoint(str(path), driver)
    driver.run()
    reference = _stats_blob(system)

    resumed = MemorySystem(config, mechanism, oracle=oracle)
    run_requests_resumed(resumed, list(requests), str(path))
    assert _stats_blob(resumed) == reference
    return read_header(str(path))


def _row_stream(config, count, rows=4, gap=2, write_every=None):
    """Requests hammering a few rows of bank (0, 0) plus neighbours."""
    donor = MemorySystem(config, "BkInOrder")
    requests = []
    cycle = 0
    for i in range(count):
        cycle += gap
        decoded = DecodedAddress(0, i % 2, (i // 2) % 2, i % rows, i % 4)
        address = donor.mapping.encode(decoded)
        op = AccessType.READ
        if write_every and i % write_every == 0:
            op = AccessType.WRITE
        requests.append((cycle, op, address))
    return requests


# ----------------------------------------------------------------------
# Directed boundary snapshots
# ----------------------------------------------------------------------


def test_checkpoint_mid_burst(tmp_path):
    """Snapshot while a burst is partially served (served > 0)."""
    config = _config(QUIET)
    requests = _row_stream(config, 40, rows=2, gap=1)

    def mid_burst(driver):
        scheduler = driver.system.schedulers[0]
        return any(
            burst.served > 0
            for queue in scheduler._read_queues.values()
            for burst in queue.bursts
        )

    _roundtrip_at(tmp_path, config, "Burst", requests, mid_burst)


def test_checkpoint_with_refresh_pending(tmp_path):
    """Snapshot while a rank is draining toward a due refresh."""
    config = _config(FAST_REFRESH)
    requests = _row_stream(config, 80, rows=4, gap=3)

    def refresh_pending(driver):
        return any(
            rank.refresh_pending
            for channel in driver.system.channels
            for rank in channel.ranks
        )

    _roundtrip_at(tmp_path, config, "Burst_TH", requests, refresh_pending)


@pytest.mark.parametrize("occupancy", [51, 52, 53])
def test_checkpoint_at_write_threshold(tmp_path, occupancy):
    """Snapshot with the write queue at 51/52/53 of 64 — straddling the
    paper's Burst_TH threshold, where one queued write decides whether
    the next schedule pass drains writes or serves reads."""
    config = baseline_config(
        channels=1, ranks=2, banks=2, rows=8,
        pool_size=256, write_queue_size=64, threshold=52,
        timing=QUIET,
    )
    donor = MemorySystem(config, "BkInOrder")
    requests = []
    for i in range(70):
        # One write per cycle, staggered across rows so nothing
        # forwards or coalesces; a read tail drains the pool.
        address = donor.mapping.encode(
            DecodedAddress(0, i % 2, (i // 2) % 2, i % 8, i % 4)
        )
        requests.append((i, AccessType.WRITE, address))
    for i in range(20):
        address = donor.mapping.encode(
            DecodedAddress(0, i % 2, 0, i % 8, (i + 1) % 4)
        )
        requests.append((200 + 4 * i, AccessType.READ, address))

    def at_occupancy(driver):
        return driver.system.pool.write_count == occupancy

    _roundtrip_at(tmp_path, config, "Burst_TH", requests, at_occupancy)


def test_checkpoint_one_cycle_before_gate_wakes(tmp_path):
    """Snapshot at ``_gate_until - 1``: the resumed run must re-run the
    gated schedule pass at exactly the same cycle (gates reset on load,
    so an extra pass must be a proven no-op)."""
    config = _config(QUIET)
    requests = _row_stream(config, 30, rows=4, gap=40)

    def gate_armed_tomorrow(driver):
        scheduler = driver.system.schedulers[0]
        gate = scheduler._gate_until
        return gate > 0 and driver.system.cycle == gate - 1

    _roundtrip_at(
        tmp_path, config, "Burst_TH", requests, gate_armed_tomorrow
    )


# ----------------------------------------------------------------------
# Property: resume == straight-through, everywhere
# ----------------------------------------------------------------------


@settings(
    deadline=None,
    # tmp_path is only a scratch directory; reusing one across
    # examples is harmless (each example overwrites prop.ckpt).
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    workload=workloads(),
    fraction=st.floats(min_value=0.0, max_value=1.0),
    refresh=st.booleans(),
    fast=st.booleans(),
)
def test_resume_equals_straight_run(tmp_path, workload, fraction,
                                    refresh, fast):
    """Random snapshot point x random workload x every mechanism."""
    config = _config(FAST_REFRESH if refresh else QUIET)
    requests = _encode(config, workload)
    path = tmp_path / "prop.ckpt"
    for mechanism in ALL_MECHANISMS:
        with fastfwd(fast):
            system = MemorySystem(config, mechanism, oracle=True)
            driver = OpenLoopDriver(system, list(requests))
            steps = 0
            # Step the whole drain (counting), then finalize — the
            # resumed run ends in run(), which also finalizes.
            while not driver.done:
                driver.step()
                steps += 1
            system.finalize()
            total = steps
            reference = _stats_blob(system)

            partial = MemorySystem(config, mechanism, oracle=True)
            driver = OpenLoopDriver(partial, list(requests))
            for _ in range(int(total * fraction)):
                if driver.done:
                    break
                driver.step()
            save_checkpoint(str(path), driver)

            resumed = MemorySystem(config, mechanism, oracle=True)
            run_requests_resumed(resumed, list(requests), str(path))
        assert _stats_blob(resumed) == reference, (
            f"{mechanism} diverged after resume at step "
            f"{int(total * fraction)}/{total} (fast={fast})"
        )


#: Mechanisms the K=4 fleet resume crosses: the paper's best scheduler
#: plus both QoS variants (whose quota/budget state is mechanism state).
FLEET_MECHANISMS = ("Burst_TH", "Burst_QW", "Burst_QB")


@settings(
    deadline=None, max_examples=20,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    fraction=st.floats(min_value=0.0, max_value=1.0),
    fast=st.booleans(),
)
def test_fleet_resume_equals_straight_run(tmp_path, fraction, fast):
    """K=4 fleet resume: random snapshot cycle x both engine modes x
    oracle on — per-source stats must be byte-identical."""
    config = baseline_config(
        channels=1, ranks=2, banks=2, rows=64,
        pool_size=32, write_queue_size=8, threshold=6,
        sources=4, timing=QUIET,
    )
    requests = make_fleet_requests("symmetric4", 100, config, seed=9)
    path = tmp_path / "fleet.ckpt"
    for mechanism in FLEET_MECHANISMS:
        with fastfwd(fast):
            system = MemorySystem(config, mechanism, oracle=True)
            driver = FleetDriver(system, list(requests))
            steps = 0
            while not driver.done:
                driver.step()
                steps += 1
            system.finalize()
            reference = _stats_blob(system)
            assert len(system.stats.per_source) == 4

            partial = MemorySystem(config, mechanism, oracle=True)
            driver = FleetDriver(partial, list(requests))
            for _ in range(int(steps * fraction)):
                if driver.done:
                    break
                driver.step()
            save_checkpoint(str(path), driver)
            assert read_header(str(path))["driver"] == "fleet"

            resumed = MemorySystem(config, mechanism, oracle=True)
            fresh = FleetDriver(resumed, list(requests))
            load_checkpoint(str(path), fresh)
            fresh.run()
        assert _stats_blob(resumed) == reference, (
            f"{mechanism} fleet resume diverged at step "
            f"{int(steps * fraction)}/{steps} (fast={fast})"
        )


def test_fleet_snapshot_rejects_open_loop_driver(tmp_path):
    """A fleet snapshot must not resume into a plain open-loop run."""
    config = baseline_config(
        channels=1, ranks=2, banks=2, rows=64,
        pool_size=32, write_queue_size=8, threshold=6,
        sources=2, timing=QUIET,
    )
    requests = make_fleet_requests("symmetric2", 40, config, seed=2)
    system = MemorySystem(config, "Burst_QW")
    driver = FleetDriver(system, requests)
    for _ in range(10):
        driver.step()
    path = tmp_path / "fleet-kind.ckpt"
    save_checkpoint(str(path), driver)
    flat = [(c, t, a) for c, t, a, _ in requests]
    with pytest.raises(CheckpointMismatchError, match="driver kind"):
        load_checkpoint(
            str(path),
            OpenLoopDriver(MemorySystem(config, "Burst_QW"), flat),
        )


@pytest.mark.parametrize("core_cls", [OoOCore, InOrderCore])
@pytest.mark.parametrize("with_fsb", [False, True])
def test_closed_loop_resume_identical(tmp_path, core_cls, with_fsb):
    """CPU-coupled (optionally bus-limited) resume is byte-identical,
    including the CoreResult and a regenerated trace iterator."""
    config = baseline_config(channels=1, ranks=2, banks=2)
    accesses = 900 if core_cls is OoOCore else 250

    def build():
        system = MemorySystem(config, "Burst_TH", oracle=True)
        trace = make_benchmark_trace("swim", accesses=accesses, seed=5)
        target = FSBAdapter(system) if with_fsb else system
        return core_cls(target, trace), system

    core, system = build()
    result = core.run()
    reference = (_stats_blob(system), json.dumps(result.to_dict()))

    core, system = build()
    for _ in range(300):
        if core.done:
            break
        core.step()
    path = tmp_path / "cpu.ckpt"
    save_checkpoint(str(path), core)

    core, system = build()
    load_checkpoint(str(path), core)
    result = core.run()
    assert (_stats_blob(system), json.dumps(result.to_dict())) == reference


def test_restored_references_share_identity(tmp_path):
    """One access referenced from several places restores as ONE object
    (completion heap + scheduler queue must see shared mutations)."""
    config = _config(QUIET)
    requests = _row_stream(config, 20, rows=2, gap=1)
    system = MemorySystem(config, "FCFS")
    driver = OpenLoopDriver(system, requests)
    # Step until the scheduler holds both a queue and an ongoing access.
    for _ in range(12):
        driver.step()
    path = tmp_path / "identity.ckpt"
    save_checkpoint(str(path), driver)

    resumed = MemorySystem(config, "FCFS")
    fresh = OpenLoopDriver(resumed, requests)
    load_checkpoint(str(path), fresh)
    scheduler = resumed.schedulers[0]
    by_id = {}
    for _done, _ident, access in scheduler._completions:
        by_id[access.id] = access
    for access in scheduler._queue:
        if access.id in by_id:
            assert access is by_id[access.id]


# ----------------------------------------------------------------------
# Mismatch rejection
# ----------------------------------------------------------------------


def _small_snapshot(tmp_path, mechanism="Burst_TH", oracle=False):
    config = _config(QUIET)
    requests = _row_stream(config, 20, rows=2, gap=2)
    system = MemorySystem(config, mechanism, oracle=oracle)
    driver = OpenLoopDriver(system, requests)
    for _ in range(10):
        driver.step()
    path = tmp_path / "snap.ckpt"
    save_checkpoint(str(path), driver)
    return config, requests, path


def test_schema_drift_rejected(tmp_path):
    config, requests, path = _small_snapshot(tmp_path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["schema"] = SCHEMA_VERSION + 1
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    with pytest.raises(CheckpointMismatchError, match="schema"):
        run_requests_resumed(
            MemorySystem(config, "Burst_TH"), requests, str(path)
        )


def test_old_schema_snapshot_rejected(tmp_path):
    """Pre-fleet snapshots (schema 2, no per-source state) must be
    refused, not silently resumed with empty per-source stats."""
    config, requests, path = _small_snapshot(tmp_path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["schema"] = 2
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    with pytest.raises(CheckpointMismatchError, match="schema"):
        run_requests_resumed(
            MemorySystem(config, "Burst_TH"), requests, str(path)
        )


def test_pre_generation_snapshot_rejected(tmp_path):
    """Schema-3 snapshots predate the generation profiles (bank-group
    gating state in ranks and oracle shadows, the Burst_BPW drain
    latch) and must be refused, not silently resumed with those fields
    defaulted."""
    config, requests, path = _small_snapshot(tmp_path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["schema"] = 3
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    with pytest.raises(CheckpointMismatchError, match="schema"):
        run_requests_resumed(
            MemorySystem(config, "Burst_TH"), requests, str(path)
        )


def test_config_fingerprint_drift_rejected(tmp_path):
    config, requests, path = _small_snapshot(tmp_path)
    drifted = replace(config, pool_size=config.pool_size * 2)
    with pytest.raises(CheckpointMismatchError, match="fingerprint"):
        run_requests_resumed(
            MemorySystem(drifted, "Burst_TH"), requests, str(path)
        )


def test_mechanism_mismatch_rejected(tmp_path):
    config, requests, path = _small_snapshot(tmp_path)
    with pytest.raises(CheckpointMismatchError, match="mechanism"):
        run_requests_resumed(
            MemorySystem(config, "RowHit"), requests, str(path)
        )


def test_driver_kind_mismatch_rejected(tmp_path):
    config, requests, path = _small_snapshot(tmp_path)
    system = MemorySystem(config, "Burst_TH")
    core = OoOCore(system, make_benchmark_trace("swim", 50, seed=1))
    with pytest.raises(CheckpointMismatchError, match="driver kind"):
        load_checkpoint(str(path), core)


def test_fsb_topology_mismatch_rejected(tmp_path):
    config, requests, path = _small_snapshot(tmp_path)
    system = MemorySystem(config, "Burst_TH")
    driver = OpenLoopDriver(FSBAdapter(system), requests)
    with pytest.raises(CheckpointMismatchError, match="front-side-bus"):
        load_checkpoint(str(path), driver)


def test_oracle_without_snapshot_state_rejected(tmp_path):
    """Target with an oracle cannot resume an oracle-less snapshot: a
    fresh oracle mid-stream would false-flag (e.g. the tREFI audit)."""
    config, requests, path = _small_snapshot(tmp_path, oracle=False)
    with pytest.raises(CheckpointMismatchError, match="oracle"):
        run_requests_resumed(
            MemorySystem(config, "Burst_TH", oracle=True),
            requests, str(path),
        )


def test_oracleless_target_accepts_oracle_snapshot(tmp_path):
    """The reverse is fine: shadow state in the snapshot is ignored."""
    config, requests, path = _small_snapshot(tmp_path, oracle=True)
    resumed = MemorySystem(config, "Burst_TH", oracle=False)
    run_requests_resumed(resumed, requests, str(path))


def test_truncated_snapshot_rejected(tmp_path):
    config, requests, path = _small_snapshot(tmp_path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")   # drop the end guard
    with pytest.raises(CheckpointMismatchError, match="truncated"):
        run_requests_resumed(
            MemorySystem(config, "Burst_TH"), requests, str(path)
        )


# ----------------------------------------------------------------------
# The Checkpointer manager
# ----------------------------------------------------------------------


def test_periodic_snapshots_and_meta(tmp_path):
    config = _config(QUIET)
    requests = _row_stream(config, 30, rows=4, gap=30)
    system = MemorySystem(config, "Burst_TH")
    driver = OpenLoopDriver(system, requests)
    path = tmp_path / "periodic.ckpt"
    checkpointer = Checkpointer(
        str(path), every=100, meta={"label": "unit"}
    )
    driver.run(checkpointer=checkpointer)
    assert checkpointer.saves >= 2
    header = read_header(str(path))
    assert header["meta"] == {"label": "unit"}
    assert header["schema"] == SCHEMA_VERSION


def test_requested_stop_saves_then_exits_143(tmp_path):
    """The SIGTERM path: flag set -> snapshot at next poll -> exit 143.
    The snapshot must resume to the exact uninterrupted statistics."""
    config = _config(QUIET)
    requests = _row_stream(config, 40, rows=4, gap=5)

    system = MemorySystem(config, "Burst_TH")
    OpenLoopDriver(system, list(requests)).run()
    reference = _stats_blob(system)

    system = MemorySystem(config, "Burst_TH")
    driver = OpenLoopDriver(system, list(requests))
    for _ in range(25):
        driver.step()
    path = tmp_path / "killed.ckpt"
    checkpointer = Checkpointer(str(path))
    checkpointer.request_stop()
    with pytest.raises(SystemExit) as exit_info:
        driver.run(checkpointer=checkpointer)
    assert exit_info.value.code == 143
    assert path.exists()

    resumed = MemorySystem(config, "Burst_TH")
    run_requests_resumed(resumed, list(requests), str(path))
    assert _stats_blob(resumed) == reference
