"""Intel's out of order memory scheduling (US patent 7,127,574 —
Rotithor, Osborne & Aboulenein; paper ref [14]).

As summarised by the paper (§4.2): unique read queues per bank and a
single write queue shared by all banks; reads are prioritized over
writes to minimise read latency; once an access is started it receives
the highest priority so it finishes quickly, bounding the degree of
reordering.  Row hits are sought in the read queues only (§5.2), which
is why Intel's row hit rate trails RowHit and Burst_WP.

``Intel_RP`` additionally allows a newly arrived read to preempt a
bank's ongoing write — an extension the paper adds for comparison; the
preempted write restarts later (§4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.controller.access import MemoryAccess
from repro.controller.base import COLUMN, Scheduler
from repro.sim.profile import NEVER

BankKey = Tuple[int, int]


class IntelScheduler(Scheduler):
    """Per-bank read queues, shared write queue, started-first issue."""

    name = "Intel"

    def __init__(self, config, channel, pool, stats, read_preemption=False):
        super().__init__(config, channel, pool, stats)
        self.read_preemption = read_preemption
        if read_preemption:
            self.name = "Intel_RP"
        self._read_queues: Dict[BankKey, List[MemoryAccess]] = {
            (rank, bank): []
            for rank, bank, _ in channel.iter_banks()
        }
        self._write_queue: List[MemoryAccess] = []
        self._ongoing: Dict[BankKey, Optional[MemoryAccess]] = {
            key: None for key in self._read_queues
        }
        self._pending = 0
        # Watermark hysteresis for the shared write queue: hitting
        # capacity enters drain mode (writes take priority everywhere)
        # until occupancy falls back to the low watermark.  This keeps
        # Intel's *saturation time* short — the paper reports 24% on
        # swim versus burst scheduling's 46% — at the cost of stealing
        # read bandwidth in bulk during the drain, which is why Intel
        # trails the other reordering mechanisms in execution time.
        self._drain_mode = False
        self._low_watermark = (3 * pool.write_capacity) // 4

    def _enqueue_read(self, access: MemoryAccess, cycle: int) -> None:
        self._read_queues[access.bank_key()].append(access)
        self._pending += 1

    def _enqueue_write(self, access: MemoryAccess, cycle: int) -> None:
        self._write_queue.append(access)
        self._pending += 1

    def pending_accesses(self) -> int:
        return self._pending

    def _mech_state(self, ctx) -> dict:
        return {
            "read_queues": [
                [list(key), [ctx.ref(a) for a in queue]]
                for key, queue in self._read_queues.items()
            ],
            "write_queue": [ctx.ref(a) for a in self._write_queue],
            "ongoing": [
                [list(key), ctx.ref_opt(access)]
                for key, access in self._ongoing.items()
            ],
            "pending": self._pending,
            "drain_mode": self._drain_mode,
        }

    def _load_mech_state(self, state: dict, ctx) -> None:
        for key, refs in state["read_queues"]:
            self._read_queues[tuple(key)] = [ctx.get(r) for r in refs]
        self._write_queue = [ctx.get(r) for r in state["write_queue"]]
        for key, ref in state["ongoing"]:
            self._ongoing[tuple(key)] = ctx.get_opt(ref)
        self._pending = state["pending"]
        self._drain_mode = state["drain_mode"]

    # ------------------------------------------------------------------
    # Access-level selection
    # ------------------------------------------------------------------

    def _select_read(self, key: BankKey) -> Optional[MemoryAccess]:
        """Oldest row-hit read to the open row, else the oldest read."""
        queue = self._read_queues[key]
        if not queue:
            return None
        rank, bank = key
        open_row = self.channel.ranks[rank].open_row(bank)
        if open_row is not None:
            for access in queue:
                if access.row == open_row:
                    return access
        return queue[0]

    def _reads_pending(self) -> bool:
        return any(self._read_queues.values())

    def _select_write_for(self, key: BankKey) -> Optional[MemoryAccess]:
        """The head of the shared write queue, if it targets ``key``.

        The single write queue drains in order from its head: only one
        write is a candidate at a time, so writes to different banks
        never drain in parallel.  This serialisation — a consequence
        of the patent's single shared write queue — is a key reason
        Intel's scheduling trails burst scheduling's per-bank write
        queues when the write queue backs up.
        """
        for access in self._write_queue:
            if self.write_is_war_blocked(access):
                continue
            if any(
                o is access for o in self._ongoing.values() if o is not None
            ):
                return None
            return access if access.bank_key() == key else None
        return None

    def _select_any_write_for(self, key: BankKey) -> Optional[MemoryAccess]:
        """Oldest drainable write aimed at ``key`` (emergency drain)."""
        for access in self._write_queue:
            if access.bank_key() != key:
                continue
            if self.write_is_war_blocked(access):
                continue
            return access
        return None

    def _update_ongoing(self) -> None:
        """Refill empty bank slots; apply read preemption if enabled.

        Reads come first, but a bank with no queued reads drains the
        oldest shared-queue write aimed at it — Intel is opportunistic
        per bank, which is why its write queue saturates less than
        burst scheduling's (24% vs 46% on swim, §5.1) at the price of
        write traffic interleaving with other banks' reads.  A full
        write queue forces writes ahead of reads everywhere.
        """
        if self.pool.write_queue_full:
            self._drain_mode = True
        elif self.pool.write_count <= self._low_watermark:
            self._drain_mode = False
        force_writes = self._drain_mode
        for key, ongoing in self._ongoing.items():
            if (
                self.read_preemption
                and ongoing is not None
                and ongoing.is_write
                and self._read_queues[key]
                and not force_writes
            ):
                # The write has not transferred data yet (it would have
                # left the ongoing slot), so it simply returns to the
                # write queue; bank state it created persists.
                ongoing.preempted = True
                self.stats.preemptions += 1
                self._ongoing[key] = ongoing = None
            if ongoing is not None:
                continue
            if force_writes:
                # Emergency drain: a full write queue stalls the CPU,
                # so every bank drains its oldest write in parallel.
                selected = self._select_any_write_for(
                    key
                ) or self._select_read(key)
            else:
                selected = self._select_read(key) or self._select_write_for(
                    key
                )
            self._ongoing[key] = selected

    def next_wakeup(self, cycle: int) -> int:
        """Exact wakeup: earliest any bank's ongoing access can issue.

        Safe because :meth:`_update_ongoing` is at a fixpoint after a
        quiet pass: drain-mode hysteresis recomputes identically from
        the frozen pool occupancy, a preemption cannot recur (the slot
        was refilled with a read), and refills are pure functions of
        frozen queue and bank state.  A bank left empty is waiting on
        an event — a read arriving, the shared write-queue head
        draining elsewhere, or a WAR-clearing completion from this
        scheduler's own heap.
        """
        wake = self._completions[0][0] if self._completions else NEVER
        if not self._pending:
            return wake
        for access in self._ongoing.values():
            if access is None:
                continue
            candidate = self.earliest_issue_cycle(access, cycle)
            if candidate < wake:
                wake = candidate
        return wake

    # ------------------------------------------------------------------
    # Transaction-level issue: started accesses first, then oldest
    # ------------------------------------------------------------------

    def schedule(self, cycle: int) -> None:
        self._update_ongoing()
        candidates = [a for a in self._ongoing.values() if a is not None]
        if not candidates:
            return
        candidates.sort(
            key=lambda a: (
                a.start_cycle is None,
                a.arrival if a.start_cycle is None else a.start_cycle,
            )
        )
        for access in candidates:
            if not self.can_issue_access(access, cycle):
                continue
            kind = self.issue_for(access, cycle)
            if kind is COLUMN:
                key = access.bank_key()
                self._ongoing[key] = None
                if access.is_read:
                    self._read_queues[key].remove(access)
                else:
                    self._write_queue.remove(access)
                self._pending -= 1
            return


__all__ = ["IntelScheduler"]
