"""Versioned simulator snapshots with byte-identical resume.

The checkpoint subsystem serializes a mid-run driver — open-loop or
closed-loop CPU — together with every stateful component under it
(pool, banks, ranks, channels, refreshers, schedulers, oracles, FSB)
into a JSON-lines snapshot file, and restores it such that resuming
produces :class:`~repro.sim.stats.SimStats` byte-identical to the
uninterrupted run.  See DESIGN.md §10 for the format and the
``state_dict``/``load_state_dict`` protocol.
"""

from repro.checkpoint.format import (
    SCHEMA_VERSION,
    LoadContext,
    SaveContext,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from repro.checkpoint.manager import Checkpointer

__all__ = [
    "SCHEMA_VERSION",
    "Checkpointer",
    "LoadContext",
    "SaveContext",
    "load_checkpoint",
    "read_header",
    "save_checkpoint",
]
