"""Microbenchmark access patterns for characterisation.

Classic directed patterns (lmbench/STREAM style) used to characterise
the memory system independently of SPEC-like workloads:

* ``stream``        — one sequential walker: pure row hits, the
  highest bandwidth the open-page system can deliver;
* ``bank_thrash``   — alternates two rows of one bank: pure row
  conflicts, the open-page worst case Table 1 prices at 15 cycles;
* ``stride``        — fixed-stride walker; sweeping the stride maps
  out the row/bank geometry the way lmbench maps cache sizes;
* ``random``        — uniform over a footprint: row-empty/conflict
  mix dominated by bank parallelism;
* ``pingpong``      — read-write alternation on one row: exercises
  the data bus direction-turnaround penalties.

Each builder returns plain :class:`~repro.workloads.trace.TraceRecord`
lists with a constant instruction gap, so latency/bandwidth effects
come from the memory system alone.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.controller.access import AccessType
from repro.errors import ConfigError
from repro.workloads.trace import TraceRecord

LINE = 64


def stream(accesses: int, gap: int = 4, start: int = 0) -> List[TraceRecord]:
    """Sequential reads, one line after another."""
    return [
        TraceRecord(gap, AccessType.READ, start + i * LINE)
        for i in range(accesses)
    ]


def bank_thrash(
    accesses: int, gap: int = 4, row_stride: int = 256 * 1024 * 32
) -> List[TraceRecord]:
    """Alternate two rows that collide in the same bank.

    With the baseline page-interleaved mapping, addresses one full
    bank-rotation apart (32 banks x 8KB = 256KB) share a bank; the
    default stride places the second row 32 rotations away so both
    land in bank 0 with different row indices.
    """
    return [
        TraceRecord(gap, AccessType.READ, (i % 2) * row_stride + (i // 2) % 64 * LINE)
        for i in range(accesses)
    ]


def stride(
    accesses: int, stride_bytes: int, gap: int = 4, start: int = 0
) -> List[TraceRecord]:
    """Fixed-stride reads."""
    if stride_bytes <= 0:
        raise ConfigError("stride must be positive")
    return [
        TraceRecord(gap, AccessType.READ, start + i * stride_bytes)
        for i in range(accesses)
    ]


def random_reads(
    accesses: int, footprint_mb: int = 512, gap: int = 4, seed: int = 1
) -> List[TraceRecord]:
    """Uniformly random reads over a footprint."""
    rng = random.Random(seed)
    lines = footprint_mb * (1 << 20) // LINE
    return [
        TraceRecord(gap, AccessType.READ, rng.randrange(lines) * LINE)
        for _ in range(accesses)
    ]


def pingpong(accesses: int, gap: int = 4) -> List[TraceRecord]:
    """Alternate reads and writes within one row (bus turnaround)."""
    records = []
    for i in range(accesses):
        op = AccessType.READ if i % 2 == 0 else AccessType.WRITE
        if op is AccessType.WRITE:
            address = (i - 1) // 2 % 64 * LINE  # write back what we read
        else:
            address = i // 2 % 64 * LINE
        records.append(TraceRecord(gap, op, address))
    return records


#: name -> builder(accesses) with default parameters.
MICROBENCHMARKS: Dict[str, Callable[[int], List[TraceRecord]]] = {
    "stream": stream,
    "bank_thrash": bank_thrash,
    "stride64": lambda n: stride(n, 64),
    "stride8k": lambda n: stride(n, 8 * 1024),
    "stride256k": lambda n: stride(n, 256 * 1024),
    "random": random_reads,
    "pingpong": pingpong,
}


__all__ = [
    "MICROBENCHMARKS",
    "bank_thrash",
    "pingpong",
    "random_reads",
    "stream",
    "stride",
]
