"""Command-level channel tracing.

:class:`ChannelTracer` hooks a :class:`~repro.dram.channel.Channel`'s
issue paths and records every SDRAM transaction with its cycle — the
machine-readable equivalent of the paper's Figure 1 timing diagrams.
It is used by the Figure 1 experiment's rendering, by tests that
assert on exact command schedules, and as a debugging aid::

    tracer = ChannelTracer(system.channels[0])
    ...run...
    print(tracer.render())

Tracing costs one extra function call per command; detach with
:meth:`ChannelTracer.detach` to restore the original methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dram.channel import Channel


@dataclass(frozen=True)
class TracedCommand:
    """One SDRAM transaction as observed on the command bus."""

    cycle: int
    kind: str            # ACT / PRE / RD / WR
    rank: int
    bank: int
    row: Optional[int]
    data_end: Optional[int]

    def __str__(self) -> str:
        location = f"r{self.rank}b{self.bank}"
        if self.kind == "ACT":
            return f"{self.cycle:4d} ACT {location} row={self.row}"
        if self.kind == "PRE":
            return f"{self.cycle:4d} PRE {location}"
        return (
            f"{self.cycle:4d} {self.kind}  {location} row={self.row} "
            f"data_end={self.data_end}"
        )


class ChannelTracer:
    """Records every command a channel issues."""

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.commands: List[TracedCommand] = []
        self._orig_activate = channel.issue_activate
        self._orig_precharge = channel.issue_precharge
        self._orig_column = channel.issue_column
        channel.issue_activate = self._activate
        channel.issue_precharge = self._precharge
        channel.issue_column = self._column

    # ------------------------------------------------------------------
    # Wrapped issue paths
    # ------------------------------------------------------------------

    def _activate(self, cycle, rank, bank, row):
        result = self._orig_activate(cycle, rank, bank, row)
        self.commands.append(
            TracedCommand(cycle, "ACT", rank, bank, row, None)
        )
        return result

    def _precharge(self, cycle, rank, bank):
        result = self._orig_precharge(cycle, rank, bank)
        self.commands.append(
            TracedCommand(cycle, "PRE", rank, bank, None, None)
        )
        return result

    def _column(self, cycle, rank, bank, row, is_read, auto_precharge=False):
        data_end = self._orig_column(
            cycle, rank, bank, row, is_read, auto_precharge
        )
        self.commands.append(
            TracedCommand(
                cycle, "RD" if is_read else "WR", rank, bank, row, data_end
            )
        )
        return data_end

    # ------------------------------------------------------------------

    def detach(self) -> None:
        """Restore the channel's unwrapped issue methods."""
        self.channel.issue_activate = self._orig_activate
        self.channel.issue_precharge = self._orig_precharge
        self.channel.issue_column = self._orig_column

    def render(self) -> str:
        """The schedule as one line per command (Figure 1 style)."""
        return "\n".join(str(command) for command in self.commands)

    @property
    def last_data_end(self) -> int:
        """Completion cycle of the schedule's final data transfer."""
        ends = [c.data_end for c in self.commands if c.data_end is not None]
        return max(ends) if ends else 0

    def __len__(self) -> int:
        return len(self.commands)


__all__ = ["ChannelTracer", "TracedCommand"]
