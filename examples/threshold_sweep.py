"""Sweep the Burst_TH threshold on one benchmark (paper §5.4).

Reproduces the Figure 12 experiment for a single workload: as the
threshold grows from 0 (pure write piggybacking) to the write queue
size (pure read preemption), read latency falls, write latency rises,
and execution time traces a valley whose floor the paper locates at
threshold 52.

Usage::

    python examples/threshold_sweep.py [benchmark] [accesses]
"""

import sys

from repro import baseline_config
from repro.analysis.tables import format_table
from repro.controller.system import MemorySystem
from repro.cpu.core import OoOCore
from repro.workloads.spec2000 import make_benchmark_trace

THRESHOLDS = (0, 8, 16, 24, 32, 40, 48, 52, 56, 60, 64)


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "swim"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 5000
    trace = make_benchmark_trace(bench, accesses, seed=1)

    rows = []
    base_cycles = None
    for threshold in THRESHOLDS:
        config = baseline_config().with_threshold(threshold)
        system = MemorySystem(config, "Burst_TH")
        result = OoOCore(system, trace).run()
        stats = system.stats
        if base_cycles is None:
            base_cycles = result.mem_cycles
        label = {0: "WP", 64: "RP"}.get(threshold, f"TH{threshold}")
        rows.append(
            (
                label,
                stats.mean_read_latency,
                stats.mean_write_latency,
                stats.write_queue_saturation,
                result.mem_cycles,
                result.mem_cycles / base_cycles,
            )
        )

    print(
        format_table(
            (
                "variant",
                "read lat",
                "write lat",
                "wq sat",
                "cycles",
                "vs WP",
            ),
            rows,
            title=f"Threshold sweep on {bench} (write queue size 64)",
        )
    )
    best = min(rows, key=lambda r: r[4])
    print(f"\nbest threshold here: {best[0]} (paper average: TH52)")


if __name__ == "__main__":
    main()
