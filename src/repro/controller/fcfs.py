"""Strict first-come-first-served scheduling (reference floor).

Not part of the paper's Table 4 — provided as the classic lower bound
the memory-scheduling literature measures from (Rixner et al. call it
"in-order"): one global queue, one access at a time, the next access's
transactions start only when the previous access completed.  No bank
pipelining, no interleaving, no reordering — the Figure 1a discipline
generalised.  Useful to quantify how much of BkInOrder's performance
already comes from inter-bank pipelining.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.controller.access import MemoryAccess
from repro.controller.base import COLUMN, Scheduler
from repro.sim.profile import NEVER


class FCFSScheduler(Scheduler):
    """One global FIFO; fully serialised service."""

    name = "FCFS"

    #: One global FIFO, no thresholds: a pass never reads the shared
    #: pool, so the no-op gate survives other channels' writes.
    pool_sensitive = False

    def __init__(self, config, channel, pool, stats) -> None:
        super().__init__(config, channel, pool, stats)
        self._queue: Deque[MemoryAccess] = deque()
        self._ongoing: Optional[MemoryAccess] = None

    def _enqueue_read(self, access: MemoryAccess, cycle: int) -> None:
        self._queue.append(access)

    def _enqueue_write(self, access: MemoryAccess, cycle: int) -> None:
        self._queue.append(access)

    def pending_accesses(self) -> int:
        return len(self._queue) + (1 if self._ongoing else 0)

    def _mech_state(self, ctx) -> dict:
        return {
            "queue": [ctx.ref(a) for a in self._queue],
            "ongoing": ctx.ref_opt(self._ongoing),
        }

    def _load_mech_state(self, state: dict, ctx) -> None:
        self._queue = deque(ctx.get(r) for r in state["queue"])
        self._ongoing = ctx.get_opt(state["ongoing"])

    def next_wakeup(self, cycle: int) -> int:
        """Exact wakeup for the fully serialised discipline.

        Safe because a quiet :meth:`schedule` pass leaves one of three
        frozen states: an ongoing access whose earliest legal cycle is
        computable (``NEVER`` for a WAR-blocked write, unblocked by the
        older read's completion in this scheduler's own heap); a queue
        head whose pop waits for the data bus to drain (the pass this
        cycle already proved ``data_busy_until > cycle``, and popping
        later is equivalent — selection is the fixed queue head and the
        issue thresholds do not depend on when the pop happened); or
        nothing pending at all.
        """
        wake = self._completions[0][0] if self._completions else NEVER
        access = self._ongoing
        if access is not None:
            candidate = self.earliest_issue_cycle(access, cycle)
        elif self._queue:
            candidate = self.channel.data_busy_until
            if candidate <= cycle:
                candidate = cycle
        else:
            return wake
        return candidate if candidate < wake else wake

    def schedule(self, cycle: int) -> None:
        if self._ongoing is None:
            if not self._queue:
                return
            # Strict serialisation: the next access starts only after
            # the previous one's data transfer has fully completed.
            if self.channel.data_busy_until > cycle:
                return
            self._ongoing = self._queue.popleft()
        access = self._ongoing
        if not self.can_issue_access(access, cycle):
            return
        if self.issue_for(access, cycle) is COLUMN:
            self._ongoing = None


__all__ = ["FCFSScheduler"]
