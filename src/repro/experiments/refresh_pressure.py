"""Refresh pressure — execution time vs density and refresh policy.

DRAM refresh overhead grows with device density: tRFC rises from
~140 cycles at 8 Gb to ~350 at 32 Gb while tREFI stays fixed, so the
fraction of time a rank is unavailable climbs steeply (Chang et al.,
HPCA 2014, the source of the DARP/SARP mechanisms modelled in
:mod:`repro.dram.refresh`).  This experiment sweeps that ladder:

* **densities** — tRFC for 8/16/32 Gb devices, with the per-bank
  tRFCpb at the JEDEC-typical ~0.4 x tRFC;
* **refresh policies** — REFab (all-bank baseline), REFpb (per-bank
  round-robin), DARP (out-of-order + pull-in), SARP (subarray-level
  access-refresh parallelism);
* **mechanisms** — Burst_TH (the paper's best), Intel (its baseline)
  and FCFS (fully serialised), to show the policies help regardless
  of the access scheduler.

For each (density, mechanism) cell the execution time is normalized
to the REFab baseline of that same cell, so the table reads directly
as "cycles saved by smarter refresh scheduling".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.experiments.common import run_benchmark_full
from repro.sim.config import REFRESH_POLICIES, baseline_config

#: Density ladder: (label, tRFC in cycles).  The real 8/16/32 Gb tRFC
#: values are paired with a compressed tREFI so a few thousand
#: simulated accesses span many refresh periods — the tRFC/tREFI duty
#: cycle (the quantity that grows with density and that the per-bank
#: policies attack) is what the ladder exercises, not wall-clock tREFI.
TREFI = 780

DENSITIES = (
    ("8Gb", 140),
    ("16Gb", 208),
    ("32Gb", 350),
)

#: Schedulers the sweep crosses the refresh policies with.
MECHANISMS = ("Burst_TH", "Intel", "FCFS")

#: Benchmarks averaged per cell (a memory-hungry subset; the full
#: 4 x 3 x 3-density matrix makes every extra benchmark expensive).
BENCHMARKS = ("swim", "art", "mcf")

#: Default accesses per run before REPRO_SCALE (the matrix has
#: 36 cells, so this sits below the figure experiments' 6000).
ACCESSES = 2000


def _density_config(base, trfc: int):
    """The baseline config at one density step of the ladder."""
    timing = replace(
        base.timing,
        name=f"{base.timing.name}-tRFC{trfc}",
        tREFI=TREFI,
        tRFC=trfc,
        tRFCpb=max(1, (trfc * 2) // 5),
    )
    return replace(base, timing=timing)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    densities=DENSITIES,
    policies: Sequence[str] = REFRESH_POLICIES,
    mechanisms: Sequence[str] = MECHANISMS,
    accesses: Optional[int] = None,
    config=None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """The density x policy x mechanism sweep, normalized to REFab."""
    benchmarks = list(benchmarks) if benchmarks else list(BENCHMARKS)
    policies = list(policies)
    if "REFab" not in policies:
        # Everything is normalized to REFab; it must be swept.
        policies.insert(0, "REFab")
    base = config if config is not None else baseline_config()
    n = ACCESSES if accesses is None else accesses
    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    for label, trfc in densities:
        cell_config = _density_config(base, trfc)
        per_density: Dict[str, Dict[str, float]] = {}
        base_cycles: Dict[tuple, int] = {}
        for policy in policies:
            cfg = replace(cell_config, refresh_policy=policy)
            for mechanism in mechanisms:
                runs = [
                    run_benchmark_full(bench, mechanism, n, cfg)
                    for bench in benchmarks
                ]
                if policy == "REFab":
                    for bench, (_, core) in zip(benchmarks, runs):
                        base_cycles[(mechanism, bench)] = core.mem_cycles
                per_density[f"{policy}/{mechanism}"] = {
                    "read_latency": arithmetic_mean(
                        [s.mean_read_latency for s, _ in runs]
                    ),
                    "refreshes": arithmetic_mean(
                        [float(s.refreshes) for s, _ in runs]
                    ),
                    "execution_vs_REFab": arithmetic_mean(
                        [
                            core.mem_cycles
                            / base_cycles[(mechanism, bench)]
                            for bench, (_, core) in zip(benchmarks, runs)
                        ]
                    ),
                }
        result[label] = per_density
    return result


def render(result) -> str:
    """Render the sweep as one paper-style text table."""
    rows = [
        (
            density,
            cell,
            values["read_latency"],
            values["refreshes"],
            values["execution_vs_REFab"],
        )
        for density, per_density in result.items()
        for cell, values in per_density.items()
    ]
    return format_table(
        (
            "density",
            "policy/mechanism",
            "read latency",
            "refreshes",
            "execution (norm. to REFab)",
        ),
        rows,
        title=(
            "Refresh pressure: density ladder x refresh policy x "
            "mechanism (HPCA 2014: per-bank policies claw back the "
            "growing tRFC overhead)"
        ),
    )


def main() -> str:
    """Run with defaults and return the rendered text."""
    return render(run())


__all__ = [
    "ACCESSES",
    "BENCHMARKS",
    "DENSITIES",
    "MECHANISMS",
    "main",
    "render",
    "run",
]
