"""Tests for the front-side bus adapter."""

import pytest

from repro.controller.access import AccessType, EnqueueStatus
from repro.controller.system import MemorySystem
from repro.cpu.core import OoOCore
from repro.errors import ConfigError
from repro.sim.fsb import FSBAdapter
from repro.workloads.spec2000 import make_benchmark_trace


def test_rejects_bad_transfer_cycles(quiet_config):
    with pytest.raises(ConfigError):
        FSBAdapter(MemorySystem(quiet_config, "Burst_TH"), 0)


def test_write_payload_occupies_request_bus(quiet_config):
    bus = FSBAdapter(MemorySystem(quiet_config, "Burst_TH"))
    w1 = bus.make_access(AccessType.WRITE, 0x1000, 0)
    w2 = bus.make_access(AccessType.WRITE, 0x2000, 0)
    assert bus.enqueue(w1, 0) is EnqueueStatus.ACCEPTED
    # The 4-cycle payload blocks the next request.
    assert bus.enqueue(w2, 2) is EnqueueStatus.REJECTED_FULL
    assert bus.request_stall_rejects == 1
    assert bus.enqueue(w2, 4) is EnqueueStatus.ACCEPTED


def test_read_request_is_single_slot(quiet_config):
    bus = FSBAdapter(MemorySystem(quiet_config, "Burst_TH"))
    r1 = bus.make_access(AccessType.READ, 0x1000, 0)
    r2 = bus.make_access(AccessType.READ, 0x2000, 0)
    assert bus.enqueue(r1, 0) is EnqueueStatus.ACCEPTED
    assert bus.enqueue(r2, 1) is EnqueueStatus.ACCEPTED


def test_read_fill_delayed_by_response_bus(quiet_config):
    plain = MemorySystem(quiet_config, "Burst_TH")
    bus = FSBAdapter(MemorySystem(quiet_config, "Burst_TH"))
    done_plain = done_bus = None
    access = plain.make_access(AccessType.READ, 0x1000, 0)
    plain.enqueue(access, 0)
    for _ in range(300):
        if plain.tick():
            done_plain = plain.cycle
            break
    access = bus.make_access(AccessType.READ, 0x1000, 0)
    bus.enqueue(access, 0)
    for _ in range(300):
        if bus.tick():
            done_bus = bus.cycle
            break
    assert done_plain is not None and done_bus is not None
    assert done_bus >= done_plain + bus.transfer_cycles


def test_closed_loop_run_through_fsb(config):
    trace = make_benchmark_trace("gzip", 500, seed=1)
    plain = OoOCore(MemorySystem(config, "Burst_TH"), trace).run()
    bus_system = FSBAdapter(MemorySystem(config, "Burst_TH"))
    bused = OoOCore(bus_system, trace).run()
    assert bused.loads == plain.loads
    # The bus adds latency but only moderately at baseline bandwidth.
    assert bused.mem_cycles >= plain.mem_cycles
    assert bused.mem_cycles < plain.mem_cycles * 1.6
    assert bus_system.idle


def test_idle_accounts_for_inflight_responses(quiet_config):
    bus = FSBAdapter(MemorySystem(quiet_config, "Burst_TH"))
    access = bus.make_access(AccessType.READ, 0x1000, 0)
    bus.enqueue(access, 0)
    saw_gap = False
    for _ in range(300):
        delivered = bus.tick()
        if delivered:
            break
        # The inner system may drain before the response crosses the
        # bus; the adapter must still report busy.
        if bus.system.idle and not bus.idle:
            saw_gap = True
    assert saw_gap
