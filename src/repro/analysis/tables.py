"""Plain-text rendering of experiment tables and figure series.

Every experiment prints its result in the same layout the paper uses,
so EXPERIMENTS.md can hold paper-vs-measured pairs side by side.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned fixed-width table."""
    rendered_rows = []
    for row in rows:
        rendered_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_series(
    name: str,
    points: Iterable[Tuple[object, float]],
    value_format: str = "{:.4f}",
) -> str:
    """Render one figure series as ``name: x=value`` pairs, one per line."""
    lines = [f"series {name}:"]
    lines.extend(
        f"  {x}: {value_format.format(y)}" for x, y in points
    )
    return "\n".join(lines)


def format_mapping(
    title: str, mapping: Mapping[str, float], value_format: str = "{:.3f}"
) -> str:
    """Render a flat name->value mapping."""
    lines = [title]
    width = max((len(k) for k in mapping), default=0)
    lines.extend(
        f"  {k.ljust(width)}  {value_format.format(v)}"
        for k, v in mapping.items()
    )
    return "\n".join(lines)


__all__ = ["format_mapping", "format_series", "format_table"]
