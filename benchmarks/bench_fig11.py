"""Regenerates paper Figure 11: outstanding accesses for swim under
thresholds WP(0), 8 ... 56, RP(64).

Shape targets (§5.4): the peak number of outstanding writes grows
with the threshold; saturation stays low for small thresholds and
jumps at the RP end (paper: <7% below TH48, 14% at TH56, 70% at RP).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig11


def test_fig11(benchmark, archive):
    result = run_once(benchmark, fig11.run)
    archive("fig11", fig11.render(result))

    order = [fig11.label(t) for t in fig11.THRESHOLDS]
    saturation = [result[name]["write_queue_saturation"] for name in order]
    mean_writes = [result[name]["mean_writes"] for name in order]

    # Write occupancy grows with the threshold end to end.
    assert mean_writes[0] < mean_writes[-1]
    assert mean_writes == sorted(mean_writes)
    # RP is the saturation extreme; WP sits in the noise floor at the
    # bottom (below a few percent, like every small threshold — the
    # paper: "the earlier write piggybacking is enabled, the less
    # frequently the write queue will be saturated").
    assert result["RP"]["write_queue_saturation"] == max(saturation)
    assert result["WP"]["write_queue_saturation"] < 0.05
    assert (
        result["WP"]["write_queue_saturation"]
        < result["TH48"]["write_queue_saturation"]
    )
    # The upper tail is monotone: TH48 <= TH52 <= TH56 <= RP.
    upper = [
        result[name]["write_queue_saturation"]
        for name in ("TH48", "TH52", "TH56", "RP")
    ]
    assert upper == sorted(upper)
