"""Two-level cache hierarchy producing main-memory access streams.

Chains the L1 data cache and the unified L2 of Table 3: references
filter through L1, L1 misses and writebacks filter through L2, and L2
misses/writebacks emerge as the (READ linefill / WRITE writeback)
stream the memory controller schedules.  This is how an example or a
test can start from raw reference traces instead of pre-filtered miss
streams.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.controller.access import AccessType
from repro.cpu.cache import Cache

#: One main-memory access: (AccessType, line-aligned byte address).
MemoryOp = Tuple[AccessType, int]


class CacheHierarchy:
    """L1D in front of a unified L2 (instruction stream not modelled:
    SPEC CPU2000 L1I miss traffic is negligible next to data misses)."""

    def __init__(self, l1d: Cache = None, l2: Cache = None) -> None:
        self.l1d = l1d if l1d is not None else Cache("L1D", 128 * 1024, 2)
        self.l2 = l2 if l2 is not None else Cache("L2", 2 * 1024 * 1024, 16)

    def access(self, address: int, is_write: bool) -> List[MemoryOp]:
        """Run one data reference; returns resulting main-memory ops.

        A clean L2 miss yields one READ linefill; evicting a dirty L2
        victim adds a WRITE writeback — the write traffic the paper's
        write queue buffers.
        """
        ops: List[MemoryOp] = []
        hit, l1_writeback = self.l1d.access(address, is_write)
        if l1_writeback is not None:
            _, l2_writeback = self.l2.access(l1_writeback, True)
            if l2_writeback is not None:
                ops.append((AccessType.WRITE, l2_writeback))
        if not hit:
            l2_hit, l2_writeback = self.l2.access(address, False)
            if l2_writeback is not None:
                ops.append((AccessType.WRITE, l2_writeback))
            if not l2_hit:
                ops.append((AccessType.READ, address))
        return ops

    def state_dict(self) -> dict:
        """Both levels' tag/LRU/dirty state (see Cache.state_dict)."""
        return {"l1d": self.l1d.state_dict(), "l2": self.l2.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self.l1d.load_state_dict(state["l1d"])
        self.l2.load_state_dict(state["l2"])

    def drain(self) -> List[MemoryOp]:
        """Flush both levels; returns the final writeback stream."""
        ops: List[MemoryOp] = []
        for line in self.l1d.flush():
            _, wb = self.l2.access(line, True)
            if wb is not None:
                ops.append((AccessType.WRITE, wb))
        ops.extend((AccessType.WRITE, line) for line in self.l2.flush())
        return ops


__all__ = ["CacheHierarchy", "MemoryOp"]
