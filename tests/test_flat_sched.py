"""Flat-array scheduler core: equivalence and directed invariants.

The fast-mode schedulers run their passes over :class:`FlatSlots`
(DESIGN.md §11) — bitset candidate sets, stamp-cached timing, an age
matrix for tie-breaks and an optionally-vectorized cross-bank min —
while ``REPRO_FASTFWD=0`` keeps the original object-model walk.  The
flat mirror must be *invisible*: byte-identical stats, command traces
and CPU results on every mechanism, with the protocol oracle watching.

The directed tests pin the idioms the property test would only
exercise by luck: equal-age tie-breaks at the age-matrix boundary,
stale-bit reuse after ``clear``/``install``, cache invalidation on a
``refresh_pending`` flip, and numpy/pure-int parity of the min.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import replace
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.access import AccessType
from repro.controller.flatcore import (
    KIND_ACTIVATE,
    NUMPY_MIN_SLOTS,
    FlatSlots,
    numpy_enabled,
)
from repro.controller.registry import extension_names, mechanism_names
from repro.controller.system import MemorySystem
from repro.dram.timing import DDR2_800
from repro.mapping.base import DecodedAddress
from repro.sim import profile
from repro.sim.config import baseline_config
from repro.sim.engine import run_requests
from repro.timebase import NEVER

ALL_MECHANISMS = list(mechanism_names()) + list(extension_names())

QUIET = replace(DDR2_800, tREFI=None, tRFC=0)
FAST_REFRESH = replace(DDR2_800, tREFI=150, tRFC=20)


@contextmanager
def pinned(**env):
    """Pin environment variables for the duration of one run."""
    saved = {key: os.environ.get(key) for key in env}
    os.environ.update({key: value for key, value in env.items()})
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                del os.environ[key]
            else:
                os.environ[key] = value


def _config(timing, **overrides):
    kwargs = dict(
        timing=timing,
        channels=1,
        ranks=2,
        banks=2,
        rows=8,
        pool_size=32,
        write_queue_size=8,
        threshold=6,
    )
    kwargs.update(overrides)
    return baseline_config(**kwargs)


def _encode(config, workload):
    donor = MemorySystem(config, "BkInOrder")
    requests = []
    for cycle, is_write, rank, bank, row, column in workload:
        address = donor.mapping.encode(
            DecodedAddress(0, rank % config.ranks, bank % config.banks,
                           row, column)
        )
        op = AccessType.WRITE if is_write else AccessType.READ
        requests.append((cycle, op, address))
    return requests


def _run(mechanism, config, requests, **env):
    """One run with the protocol oracle attached via REPRO_ORACLE=1."""
    with pinned(REPRO_ORACLE="1", **env):
        system = MemorySystem(config, mechanism)
        commands = []
        for channel in system.channels:
            channel.add_command_listener(
                lambda event, log=commands: log.append(repr(event))
            )
        run_requests(system, list(requests))
    return system.stats.to_dict(), commands


@st.composite
def workloads(draw):
    """Bursty timestamped requests over a tiny address space."""
    count = draw(st.integers(min_value=4, max_value=32))
    requests = []
    cycle = 0
    for _ in range(count):
        cycle += draw(
            st.one_of(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=50, max_value=400),
            )
        )
        requests.append(
            (
                cycle,
                draw(st.booleans()),
                draw(st.integers(0, 3)),
                draw(st.integers(0, 7)),
                draw(st.integers(0, 3)),
                draw(st.integers(0, 3)),
            )
        )
    return requests


@settings(deadline=None)
@given(workload=workloads(), refresh=st.booleans())
def test_flat_pass_identical_to_object_pass(workload, refresh):
    """Flat-array passes are byte-identical to the object-model walk.

    The flat path only runs under ``REPRO_FASTFWD=1`` (the engine sets
    ``_want_hint`` before each pass), so fast-vs-sequential is exactly
    flat-vs-object — on all mechanisms, oracle-clean.
    """
    config = _config(FAST_REFRESH if refresh else QUIET)
    requests = _encode(config, workload)
    for mechanism in ALL_MECHANISMS:
        obj = _run(mechanism, config, requests, REPRO_FASTFWD="0")
        flat = _run(mechanism, config, requests, REPRO_FASTFWD="1")
        assert flat == obj, f"{mechanism} flat pass diverged"


@pytest.mark.skipif(not numpy_enabled(), reason="numpy not installed")
@settings(deadline=None, max_examples=10)
@given(workload=workloads())
def test_numpy_min_matches_pure_int_fallback(workload):
    """Vectorized and pure-int cross-bank mins agree byte-for-byte.

    The config crosses ``NUMPY_MIN_SLOTS`` (4 ranks x 8 banks = 32
    slots) so ``REPRO_NUMPY=1`` genuinely takes the vectorized path;
    ``REPRO_NUMPY=0`` forces the int fallback on the same machine.
    """
    config = _config(QUIET, ranks=4, banks=8)
    system = MemorySystem(config, "Burst_TH")
    assert FlatSlots(system.channels[0]).use_numpy
    requests = _encode(config, workload)
    for mechanism in ("Burst_TH", "Burst_RP"):
        vec = _run(mechanism, config, requests,
                   REPRO_FASTFWD="1", REPRO_NUMPY="1")
        pure = _run(mechanism, config, requests,
                    REPRO_FASTFWD="1", REPRO_NUMPY="0")
        assert vec == pure, f"{mechanism} numpy min diverged"


# ----------------------------------------------------------------------
# Directed: age matrix
# ----------------------------------------------------------------------


def _flat():
    system = MemorySystem(_config(QUIET, ranks=2, banks=4), "Burst_TH")
    return FlatSlots(system.channels[0])


def _access(arrival, is_write=False):
    return SimpleNamespace(arrival=arrival, is_write=is_write)


def test_oldest_equal_age_tie_breaks_to_lowest_slot():
    """Same arrival, same direction: the lowest slot index wins.

    This is the boundary the composed age key exists for — it must
    reproduce the object path's stable min over ``iter_banks`` order.
    """
    flat = _flat()
    for slot in (5, 3, 6):
        flat.install(slot, _access(arrival=10))
    mask = (1 << 5) | (1 << 3) | (1 << 6)
    assert flat.oldest(mask) == 3
    # A strictly earlier arrival beats any slot position.
    flat.install(7, _access(arrival=9))
    assert flat.oldest(mask | (1 << 7)) == 7
    # Masked queries ignore older candidates outside the mask.
    assert flat.oldest((1 << 5) | (1 << 6)) == 5


def test_oldest_orders_reads_before_writes_at_equal_arrival():
    """The direction bit sits above the arrival in the composed key."""
    flat = _flat()
    flat.install(0, _access(arrival=10, is_write=True))
    flat.install(1, _access(arrival=10, is_write=False))
    assert flat.oldest(0b11) == 1


def test_clear_then_install_rewrites_stale_age_bits():
    """A freed slot's stale bits in other rows must never leak.

    ``clear`` is O(1) and leaves other rows' bits for the slot behind;
    ``install`` must rewrite them in both directions before the slot
    can appear in a query again.
    """
    flat = _flat()
    flat.install(0, _access(arrival=5))
    flat.install(1, _access(arrival=6))
    flat.clear(0)
    assert flat.oldest(0b10) == 1
    # Reinstalled *younger* than slot 1: the old "slot 0 is older"
    # relation must not survive the clear.
    flat.install(0, _access(arrival=7))
    assert flat.oldest(0b11) == 1
    flat.clear(1)
    flat.install(1, _access(arrival=4))
    assert flat.oldest(0b11) == 1


def test_min_ready_numpy_and_pure_agree():
    """Both min implementations see only occupied slots."""
    flat = _flat()
    flat.install(2, _access(arrival=1))
    flat.install(4, _access(arrival=2))
    flat.ready[2] = 100
    flat.ready[4] = 90
    assert flat.min_ready() == 90
    flat.clear(4)
    assert flat.min_ready() == 100
    flat.clear(2)
    assert flat.min_ready() == NEVER


# ----------------------------------------------------------------------
# Directed: stamp-cache invalidation
# ----------------------------------------------------------------------


def test_refresh_pending_flip_invalidates_cached_activate():
    """A cached ACTIVATE candidate tracks ``refresh_pending`` flips.

    The refresh engine blocks new activates while a refresh is due and
    bumps ``Rank.ver`` exactly when the flag flips; the flat timing
    cache must recompute on the bumped stamp or the fast path would
    issue an activate the object path (and the device) refuses.
    """
    config = _config(DDR2_800)  # refresh enabled: tREFI is real
    system = MemorySystem(config, "BkInOrder")
    sched = system.schedulers[0]
    address = system.mapping.encode(DecodedAddress(0, 0, 0, 3, 0))
    access = system.make_access(AccessType.READ, address, 0)
    assert system.enqueue(access, 0).name == "ACCEPTED"

    flat = sched._flat
    slot = access.rank * sched._bpr + access.bank
    t0 = sched._flat_earliest(flat, slot, access, 0)
    assert flat.kind[slot] == KIND_ACTIVATE
    assert t0 < NEVER
    assert (t0 <= 0) == sched.can_issue_access(access, 0)

    rank = system.channels[0].ranks[0]
    # Exactly what RefreshController.tick does at the due cycle.
    rank.refresh_pending = True
    rank.ver += 1
    assert sched._flat_earliest(flat, slot, access, 0) == NEVER
    assert not sched.can_issue_access(access, 0)

    rank.refresh_pending = False
    rank.ver += 1
    assert sched._flat_earliest(flat, slot, access, 0) == t0
    assert (t0 <= 0) == sched.can_issue_access(access, 0)


def test_bind_invalidates_timing_cache():
    """(Re)binding a slot forces a timing recompute on the next pass."""
    flat = _flat()
    flat.bind(3, _access(arrival=1))
    assert flat.occupied == 1 << 3
    assert flat.bstamp[3] == -1  # device vers are never negative
    flat.clear(3)
    assert flat.occupied == 0
    assert flat.acc[3] is None


# ----------------------------------------------------------------------
# Directed: engine bookkeeping counters (satellites 1 and 2)
# ----------------------------------------------------------------------


def _sparse_requests(config, count=12, gap=700):
    donor = MemorySystem(config, "BkInOrder")
    requests = []
    for i in range(count):
        address = donor.mapping.encode(DecodedAddress(0, 0, 0, i % 8, 0))
        requests.append((i * gap, AccessType.READ, address))
    return requests


def test_lookout_counters_move_and_stay_out_of_snapshots():
    """The ``_arm_after`` streak throttle exposes hit/miss counters.

    They are engine bookkeeping, not simulation results: they must
    move under the fast engine yet never appear in ``to_dict()`` (the
    checkpoint / cache byte-identity surface).
    """
    config = _config(QUIET)
    with pinned(REPRO_FASTFWD="1"):
        system = MemorySystem(config, "Burst_TH")
        run_requests(system, _sparse_requests(config))
    stats = system.stats
    assert stats.lookout_hits > 0
    assert stats.lookout_hits + stats.lookout_misses + \
        stats.lookout_throttled > 0
    snapshot = stats.to_dict()
    assert "lookout_hits" not in snapshot
    assert "lookout_misses" not in snapshot
    assert "lookout_throttled" not in snapshot


def test_profiler_reports_pass_cost_breakdown(monkeypatch):
    """REPRO_PROFILE=1 counts candidates, checks and cache hits."""
    monkeypatch.setenv("REPRO_PROFILE", "1")
    monkeypatch.setenv("REPRO_FASTFWD", "1")
    profile.reset()
    try:
        config = _config(QUIET)
        system = MemorySystem(config, "Burst_TH")
        run_requests(system, _sparse_requests(config))
        summary = profile.active().summary()
        assert summary["sched_candidates"] > 0
        assert summary["sched_timing_checks"] > 0
        assert summary["sched_bitset_hits"] + \
            summary["sched_timing_checks"] == summary["sched_candidates"]
        assert "sched candidates" in profile.active().format_summary()
    finally:
        profile.reset()
