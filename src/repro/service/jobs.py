"""Cell and job model for the simulation service.

A submission is either an explicit list of cells or the name of a
known experiment matrix; either way it expands — deterministically, in
a stable order — into :class:`CellSpec` units the server schedules:

* ``sim`` cells are the runner's content-addressed
  (benchmark, mechanism, accesses, seed, config) closed-loop cells:
  deduped against ``.repro-cache/``, checkpointable, migratable.
* ``fleet`` cells drive the open-loop multi-tenant scenarios of
  :mod:`repro.experiments.fleet`.  They are deliberately *not* in the
  persistent store (the cache is shaped around single-stream
  closed-loop runs), so they dedupe in server memory only and restart
  rather than resume when preempted.

The wire format is plain JSON: a ``sim`` cell ships its full
``SystemConfig.to_dict()`` so server and worker agree on the exact
machine, and the server-computed ``key`` rides along so the worker
checkpoints at the path the next worker will look in.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.controller.registry import MECHANISMS as MECHANISM_REGISTRY
from repro.errors import ServiceError
from repro.experiments import common, fleet, generations, runner
from repro.sim.config import SystemConfig, baseline_config
from repro.workloads.fleet import SCENARIOS
from repro.workloads.spec2000 import benchmark_names


def canonical_json(payload: object) -> str:
    """The one JSON encoding digests are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def result_digest(payload: object) -> str:
    """Stable content digest of one cell's result payload.

    Byte-identity is the service's acceptance bar: a migrated cell, a
    cache-served cell and a fresh in-process run of the same cell must
    all produce the same digest.
    """
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class CellSpec:
    """One schedulable unit of work, with its dedupe key."""

    kind: str           # "sim" | "fleet"
    key: str            # content address (sim) / synthetic digest (fleet)
    payload: dict       # kind-specific wire fields

    def to_wire(self) -> dict:
        return {"kind": self.kind, "key": self.key, **self.payload}

    @property
    def label(self) -> str:
        """Short human identity for logs and events."""
        p = self.payload
        if self.kind == "sim":
            return f"{p['benchmark']}/{p['mechanism']}"
        return f"{p['scenario']}/{p['mechanism']}"

    @property
    def preemptible(self) -> bool:
        """Whether preempting this cell preserves work (snapshots)."""
        return self.kind == "sim"


def sim_cell_spec(
    benchmark: str,
    mechanism: str,
    accesses: int,
    seed: int,
    config: SystemConfig,
) -> CellSpec:
    """A ``sim`` cell keyed exactly like the runner's result cache."""
    key = runner.cell_key(benchmark, mechanism, accesses, seed, config)
    return CellSpec(
        kind="sim",
        key=key,
        payload={
            "benchmark": benchmark,
            "mechanism": mechanism,
            "accesses": int(accesses),
            "seed": int(seed),
            "config": config.to_dict(),
        },
    )


def sim_cell_from_wire(data: dict) -> runner.Cell:
    """Decode a ``sim`` wire payload back into a runner cell."""
    try:
        return (
            data["benchmark"],
            data["mechanism"],
            int(data["accesses"]),
            int(data["seed"]),
            SystemConfig.from_dict(data["config"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(f"malformed sim cell: {error!r}") from None


def fleet_cell_spec(
    scenario: str,
    mechanism: str,
    accesses: Optional[int],
    seed: int,
) -> CellSpec:
    """A ``fleet`` cell with a synthetic in-memory dedupe key.

    ``accesses`` stays pre-scale (``run_scenario`` applies
    ``REPRO_SCALE`` itself, in the worker), so the effective scale is
    folded into the key: two servers at different scales never share a
    memo entry.
    """
    payload = {
        "scenario": scenario,
        "mechanism": mechanism,
        "accesses": accesses,
        "seed": int(seed),
    }
    key = hashlib.sha256(
        canonical_json(
            {"fleet": payload, "scale": os.environ.get("REPRO_SCALE", "1.0")}
        ).encode("utf-8")
    ).hexdigest()
    return CellSpec(kind="fleet", key=key, payload=payload)


def spec_from_wire(data: dict) -> CellSpec:
    """Validate + normalise one client-supplied cell dict."""
    kind = data.get("kind", "sim")
    if kind == "sim":
        benchmark, mechanism, accesses, seed, config = sim_cell_from_wire(
            data
        )
        _check_mechanism(mechanism)
        _check_benchmark(benchmark)
        return sim_cell_spec(benchmark, mechanism, accesses, seed, config)
    if kind == "fleet":
        scenario = data.get("scenario")
        if scenario not in SCENARIOS:
            raise ServiceError(
                f"unknown fleet scenario {scenario!r}; "
                f"available: {sorted(SCENARIOS)}"
            )
        mechanism = data.get("mechanism", "Burst_TH")
        _check_mechanism(mechanism)
        accesses = data.get("accesses")
        return fleet_cell_spec(
            scenario, mechanism,
            None if accesses is None else int(accesses),
            int(data.get("seed", common.default_seed())),
        )
    raise ServiceError(f"unknown cell kind {kind!r}")


def _check_mechanism(mechanism: str) -> None:
    if mechanism not in MECHANISM_REGISTRY:
        raise ServiceError(
            f"unknown mechanism {mechanism!r}; "
            f"available: {sorted(MECHANISM_REGISTRY)}"
        )


def _check_benchmark(benchmark: str) -> None:
    if benchmark not in benchmark_names():
        raise ServiceError(
            f"unknown benchmark {benchmark!r}; "
            f"available: {benchmark_names()}"
        )


# ----------------------------------------------------------------------
# Matrix expansion
# ----------------------------------------------------------------------


def _expand_fig7(params: dict) -> List[CellSpec]:
    """The shared benchmark × mechanism matrix behind Figures 7-10."""
    benchmarks = list(params.get("benchmarks") or benchmark_names())
    mechanisms = list(params.get("mechanisms") or common.MECHANISMS)
    for benchmark in benchmarks:
        _check_benchmark(benchmark)
    for mechanism in mechanisms:
        _check_mechanism(mechanism)
    accesses = common.scaled_accesses(params.get("accesses"))
    seed = int(params.get("seed", common.default_seed()))
    config = baseline_config()
    return [
        sim_cell_spec(benchmark, mechanism, accesses, seed, config)
        for benchmark in benchmarks
        for mechanism in mechanisms
    ]


def _expand_generations(params: dict) -> List[CellSpec]:
    """The generation-ladder fig7 matrix (experiments.generations)."""
    benchmarks = list(params.get("benchmarks") or generations.BENCHMARKS)
    mechanisms = list(params.get("mechanisms") or generations.MECHANISMS)
    for benchmark in benchmarks:
        _check_benchmark(benchmark)
    for mechanism in mechanisms:
        _check_mechanism(mechanism)
    accesses = common.scaled_accesses(
        params.get("accesses", generations.ACCESSES)
    )
    seed = int(params.get("seed", common.default_seed()))
    specs = []
    from repro.dram.timing import GENERATIONS

    for timing in GENERATIONS:
        config = generations.generation_config(timing)
        specs.extend(
            sim_cell_spec(benchmark, mechanism, accesses, seed, config)
            for benchmark in benchmarks
            for mechanism in mechanisms
        )
    return specs


def _expand_fleet(params: dict) -> List[CellSpec]:
    """The adversarial multi-tenant scenario matrix."""
    scenarios = list(params.get("scenarios") or SCENARIOS)
    mechanisms = list(params.get("mechanisms") or fleet.MECHANISMS)
    unknown = [s for s in scenarios if s not in SCENARIOS]
    if unknown:
        raise ServiceError(
            f"unknown fleet scenario(s) {unknown}; "
            f"available: {sorted(SCENARIOS)}"
        )
    for mechanism in mechanisms:
        _check_mechanism(mechanism)
    accesses = params.get("accesses")
    seed = int(params.get("seed", common.default_seed()))
    return [
        fleet_cell_spec(
            scenario, mechanism,
            None if accesses is None else int(accesses), seed,
        )
        for scenario in scenarios
        for mechanism in mechanisms
    ]


MATRICES = {
    "fig7": _expand_fig7,
    "generations": _expand_generations,
    "fleet": _expand_fleet,
}


def expand_submission(request: dict) -> List[CellSpec]:
    """Expand one submit request into its ordered, deduped cell list.

    Order is the expansion order (the dispatch tie-break, which makes
    single-worker completion order reproducible); duplicate keys
    within one submission collapse to the first occurrence.
    """
    matrix = request.get("matrix")
    cells = request.get("cells")
    if (matrix is None) == (cells is None):
        raise ServiceError(
            "a submission needs exactly one of 'matrix' or 'cells'"
        )
    if matrix is not None:
        expander = MATRICES.get(matrix)
        if expander is None:
            raise ServiceError(
                f"unknown matrix {matrix!r}; available: {sorted(MATRICES)}"
            )
        specs = expander(request.get("params") or {})
    else:
        if not isinstance(cells, Sequence) or isinstance(cells, (str, bytes)):
            raise ServiceError("'cells' must be a list of cell dicts")
        if not cells:
            raise ServiceError("'cells' must not be empty")
        specs = [spec_from_wire(cell) for cell in cells]
    unique: Dict[str, CellSpec] = {}
    for spec in specs:
        unique.setdefault(spec.key, spec)
    return list(unique.values())


__all__ = [
    "MATRICES",
    "CellSpec",
    "canonical_json",
    "expand_submission",
    "fleet_cell_spec",
    "result_digest",
    "sim_cell_from_wire",
    "sim_cell_spec",
    "spec_from_wire",
]
