"""Statistics primitives and the per-run statistics bundle.

Everything the paper's evaluation section plots comes out of
:class:`SimStats`:

* read/write latency in SDRAM cycles (Figure 7, Figure 12);
* time-weighted distributions of outstanding reads and writes
  (Figure 8, Figure 11);
* row hit / row conflict / row empty counts (Figure 9a);
* address and data bus utilisation (Figure 9b);
* write-queue saturation time (§5.1, §5.4);
* execution time in cycles (Figure 10, Figure 12).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, Optional, Tuple

from repro.dram.channel import RowState


class LatencyStat:
    """Streaming mean/min/max accumulator for latency samples."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def add(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average of all samples; 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyStat") -> None:
        """Fold another accumulator into this one.

        Merging an empty accumulator is a no-op on ``min``/``max``
        (they stay ``None`` until a real sample arrives), and merging
        *into* an empty one adopts the other's bounds unchanged.
        """
        self.count += other.count
        self.total += other.total
        for bound in ("min", "max"):
            theirs = getattr(other, bound)
            if theirs is None:
                continue
            ours = getattr(self, bound)
            if ours is None:
                setattr(self, bound, theirs)
            elif bound == "min":
                setattr(self, bound, min(ours, theirs))
            else:
                setattr(self, bound, max(ours, theirs))

    def to_dict(self) -> Dict[str, Optional[int]]:
        """JSON-safe snapshot; ``min``/``max`` stay ``None`` when empty."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Optional[int]]) -> "LatencyStat":
        """Inverse of :meth:`to_dict` (lossless round-trip)."""
        stat = cls()
        stat.count = int(data["count"])
        stat.total = int(data["total"])
        stat.min = None if data["min"] is None else int(data["min"])
        stat.max = None if data["max"] is None else int(data["max"])
        return stat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyStat(n={self.count}, mean={self.mean:.1f})"


class Histogram:
    """Integer-keyed histogram with optional weights.

    Used time-weighted: the simulator adds one sample per memory cycle
    keyed by the number of outstanding accesses, which is precisely the
    paper's "percentage of time that a given number of accesses are
    outstanding" (Figure 8).
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[int, int] = defaultdict(int)

    def add(self, key: int, weight: int = 1) -> None:
        self.counts[key] += weight

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, key: int) -> float:
        """Share of total weight at ``key``."""
        total = self.total
        return self.counts.get(key, 0) / total if total else 0.0

    def fraction_at_least(self, key: int) -> float:
        """Share of total weight at or above ``key``."""
        total = self.total
        if not total:
            return 0.0
        return sum(v for k, v in self.counts.items() if k >= key) / total

    def mean(self) -> float:
        total = self.total
        if not total:
            return 0.0
        return sum(k * v for k, v in self.counts.items()) / total

    def series(self) -> Iterable[Tuple[int, float]]:
        """(key, fraction) pairs sorted by key — a paper figure series."""
        total = self.total
        if not total:
            return []
        return [(k, v / total) for k, v in sorted(self.counts.items())]

    def percentile(self, q: float) -> float:
        """Smallest key whose cumulative weight reaches fraction ``q``.

        ``q`` is in [0, 1]; the weighted analogue of the nearest-rank
        percentile (``percentile(0.99)`` is the p99 of the samples).
        Returns 0.0 for an empty histogram.
        """
        total = self.total
        if not total:
            return 0.0
        target = q * total
        running = 0
        last = 0
        for key, weight in sorted(self.counts.items()):
            running += weight
            last = key
            if running >= target:
                return float(key)
        return float(last)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's weights into this one."""
        for key, weight in other.counts.items():
            self.counts[key] += weight

    def to_dict(self) -> Dict[str, int]:
        """JSON-safe snapshot (JSON keys must be strings)."""
        return {str(k): v for k, v in sorted(self.counts.items())}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "Histogram":
        """Inverse of :meth:`to_dict` (lossless round-trip)."""
        hist = cls()
        for key, weight in data.items():
            hist.counts[int(key)] = int(weight)
        return hist


class SourceStats:
    """Per-tenant statistics in fleet mode (one per source id).

    The scheduler base class records into exactly one of these per
    completed access, keyed by ``MemoryAccess.source``, at the same
    events in both engine paths — so the per-source bundle is
    byte-identical across sequential, fast-forward and
    checkpoint-resumed runs, like everything else in
    :class:`SimStats`.
    """

    __slots__ = (
        "read_latency",
        "write_latency",
        "read_latencies",
        "row_states",
        "completed_reads",
        "completed_writes",
        "forwarded_reads",
        "data_bus_cycles",
    )

    def __init__(self) -> None:
        self.read_latency = LatencyStat()
        self.write_latency = LatencyStat()
        #: Full read-latency histogram: tail metrics (p99) for the
        #: starvation regressions need more than mean/min/max.
        self.read_latencies = Histogram()
        self.row_states: Dict[RowState, int] = {s: 0 for s in RowState}
        self.completed_reads = 0
        self.completed_writes = 0
        self.forwarded_reads = 0
        self.data_bus_cycles = 0

    @property
    def row_hit_rate(self) -> float:
        total = sum(self.row_states.values())
        return self.row_states[RowState.HIT] / total if total else 0.0

    def p99_read_latency(self) -> float:
        return self.read_latencies.percentile(0.99)

    def service_rate(self, cycles: int) -> float:
        """Completed accesses per cycle — the Jain-index service metric."""
        served = self.completed_reads + self.completed_writes
        return served / cycles if cycles else 0.0

    def merge(self, other: "SourceStats") -> None:
        self.read_latency.merge(other.read_latency)
        self.write_latency.merge(other.write_latency)
        self.read_latencies.merge(other.read_latencies)
        for state, count in other.row_states.items():
            self.row_states[state] = self.row_states.get(state, 0) + count
        self.completed_reads += other.completed_reads
        self.completed_writes += other.completed_writes
        self.forwarded_reads += other.forwarded_reads
        self.data_bus_cycles += other.data_bus_cycles

    def to_dict(self) -> Dict[str, object]:
        return {
            "read_latency": self.read_latency.to_dict(),
            "write_latency": self.write_latency.to_dict(),
            "read_latencies": self.read_latencies.to_dict(),
            "row_states": {
                state.value: self.row_states.get(state, 0)
                for state in RowState
            },
            "completed_reads": self.completed_reads,
            "completed_writes": self.completed_writes,
            "forwarded_reads": self.forwarded_reads,
            "data_bus_cycles": self.data_bus_cycles,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SourceStats":
        stats = cls()
        stats.read_latency = LatencyStat.from_dict(data["read_latency"])
        stats.write_latency = LatencyStat.from_dict(data["write_latency"])
        stats.read_latencies = Histogram.from_dict(data["read_latencies"])
        for label, count in data["row_states"].items():
            stats.row_states[RowState(label)] = int(count)
        stats.completed_reads = int(data["completed_reads"])
        stats.completed_writes = int(data["completed_writes"])
        stats.forwarded_reads = int(data["forwarded_reads"])
        stats.data_bus_cycles = int(data["data_bus_cycles"])
        return stats


@dataclass
class SimStats:
    """Everything one simulation run reports."""

    cycles: int = 0
    read_latency: LatencyStat = field(default_factory=LatencyStat)
    write_latency: LatencyStat = field(default_factory=LatencyStat)
    row_states: Dict[RowState, int] = field(
        default_factory=lambda: {state: 0 for state in RowState}
    )
    outstanding_reads: Histogram = field(default_factory=Histogram)
    outstanding_writes: Histogram = field(default_factory=Histogram)
    completed_reads: int = 0
    completed_writes: int = 0
    forwarded_reads: int = 0
    preemptions: int = 0
    piggybacked_writes: int = 0
    write_queue_full_cycles: int = 0
    pool_full_cycles: int = 0
    cmd_bus_cycles: int = 0
    data_bus_cycles: int = 0
    refreshes: int = 0
    cpu_stall_cycles: int = 0
    instructions: int = 0
    #: Sizes of completed read bursts (burst scheduling only): the
    #: payload distribution of Figure 2.  A mean near 1 means the
    #: workload gives the mechanism nothing to cluster.
    burst_sizes: Histogram = field(default_factory=Histogram)
    #: Read latency per 1GB address slice.  Multiprogrammed mixes
    #: (repro.workloads.mixes) give each core one slice, so this is
    #: the per-core latency breakdown for fairness analysis.
    read_latency_per_slice: Dict[int, LatencyStat] = field(
        default_factory=dict
    )
    #: Per-tenant statistics, keyed by ``MemoryAccess.source`` (fleet
    #: mode).  Single-stream runs put everything under source 0; use
    #: :meth:`for_source` to read-or-create an entry.
    per_source: Dict[int, SourceStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Next-event lookout diagnostics (deliberately NOT dataclass
        # fields): how often the adaptive streak throttle suppressed a
        # next_event_cycle scan, and how scans split into productive
        # windows (>= 3 cycles, resets the arming bar) versus short
        # ones (raises it).  Engine bookkeeping, not simulation
        # results — keeping them out of the field set keeps them out
        # of to_dict()/report(), so checkpoints and cached results
        # stay byte-identical whether or not fast-forward ran.
        self.lookout_throttled = 0
        self.lookout_hits = 0
        self.lookout_misses = 0

    #: Plain integer counters (everything that is not a nested
    #: accumulator); drives merge and serialization uniformly.
    _COUNTER_FIELDS = (
        "cycles",
        "completed_reads",
        "completed_writes",
        "forwarded_reads",
        "preemptions",
        "piggybacked_writes",
        "write_queue_full_cycles",
        "pool_full_cycles",
        "cmd_bus_cycles",
        "data_bus_cycles",
        "refreshes",
        "cpu_stall_cycles",
        "instructions",
    )

    # ------------------------------------------------------------------
    # Merge / serialization (parallel runner, persistent result cache)
    # ------------------------------------------------------------------

    def merge(self, other: "SimStats") -> None:
        """Fold another run's statistics into this bundle.

        Counters add, latency accumulators and histograms merge, and
        per-slice latencies merge slice-wise — the multi-shard
        counterpart of :meth:`LatencyStat.merge`.
        """
        for name in self._COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.read_latency.merge(other.read_latency)
        self.write_latency.merge(other.write_latency)
        for state, count in other.row_states.items():
            self.row_states[state] = self.row_states.get(state, 0) + count
        self.outstanding_reads.merge(other.outstanding_reads)
        self.outstanding_writes.merge(other.outstanding_writes)
        self.burst_sizes.merge(other.burst_sizes)
        for slot, stat in other.read_latency_per_slice.items():
            mine = self.read_latency_per_slice.setdefault(slot, LatencyStat())
            mine.merge(stat)
        for source, stat in other.per_source.items():
            self.per_source.setdefault(source, SourceStats()).merge(stat)

    def for_source(self, source: int) -> SourceStats:
        """The per-tenant bundle for ``source``, created on demand."""
        stats = self.per_source.get(source)
        if stats is None:
            stats = self.per_source[source] = SourceStats()
        return stats

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-safe snapshot of every field.

        ``from_dict(to_dict())`` reconstructs an equal bundle; the
        persistent result cache and the multiprocessing workers both
        ship stats through this form.  ``tests/test_stats.py`` asserts
        the key set matches the dataclass fields, so a new field cannot
        silently skip serialization.
        """
        data: Dict[str, object] = {
            name: getattr(self, name) for name in self._COUNTER_FIELDS
        }
        data["read_latency"] = self.read_latency.to_dict()
        data["write_latency"] = self.write_latency.to_dict()
        data["row_states"] = {
            state.value: self.row_states.get(state, 0) for state in RowState
        }
        data["outstanding_reads"] = self.outstanding_reads.to_dict()
        data["outstanding_writes"] = self.outstanding_writes.to_dict()
        data["burst_sizes"] = self.burst_sizes.to_dict()
        data["read_latency_per_slice"] = {
            str(slot): stat.to_dict()
            for slot, stat in sorted(self.read_latency_per_slice.items())
        }
        data["per_source"] = {
            str(source): stat.to_dict()
            for source, stat in sorted(self.per_source.items())
        }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimStats":
        """Inverse of :meth:`to_dict` (lossless round-trip)."""
        stats = cls()
        for name in cls._COUNTER_FIELDS:
            # No int() coercion: bus-cycle counters are per-channel
            # *averages* (see MemorySystem.finalize) and may be
            # fractional; JSON already round-trips int/float exactly.
            setattr(stats, name, data[name])
        stats.read_latency = LatencyStat.from_dict(data["read_latency"])
        stats.write_latency = LatencyStat.from_dict(data["write_latency"])
        for label, count in data["row_states"].items():
            stats.row_states[RowState(label)] = int(count)
        stats.outstanding_reads = Histogram.from_dict(
            data["outstanding_reads"]
        )
        stats.outstanding_writes = Histogram.from_dict(
            data["outstanding_writes"]
        )
        stats.burst_sizes = Histogram.from_dict(data["burst_sizes"])
        stats.read_latency_per_slice = {
            int(slot): LatencyStat.from_dict(stat)
            for slot, stat in data["read_latency_per_slice"].items()
        }
        stats.per_source = {
            int(source): SourceStats.from_dict(stat)
            for source, stat in data.get("per_source", {}).items()
        }
        return stats

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        """Dataclass field names (serialization coverage checks)."""
        return tuple(f.name for f in fields(cls))

    def load_state(self, data: Dict[str, object]) -> None:
        """Restore a :meth:`to_dict` snapshot *into this instance*.

        In-place on purpose: the schedulers, the system and the CPU
        core all hold references to one shared bundle, so checkpoint
        restore must refill the existing object rather than swap in a
        new one.
        """
        other = SimStats.from_dict(data)
        for name in self.field_names():
            setattr(self, name, getattr(other, name))

    # ------------------------------------------------------------------
    # Derived metrics used by the experiment harness
    # ------------------------------------------------------------------

    def row_state_rates(self) -> Dict[str, float]:
        """Row hit/conflict/empty as fractions of classified accesses."""
        total = sum(self.row_states.values())
        if not total:
            return {state.value: 0.0 for state in RowState}
        return {
            state.value: count / total
            for state, count in self.row_states.items()
        }

    @property
    def row_hit_rate(self) -> float:
        return self.row_state_rates()["hit"]

    @property
    def address_bus_utilization(self) -> float:
        """Fraction of cycles the command bus carried a command."""
        return self.cmd_bus_cycles / self.cycles if self.cycles else 0.0

    @property
    def data_bus_utilization(self) -> float:
        """Fraction of cycles the data bus carried a burst (Fig. 9b)."""
        return self.data_bus_cycles / self.cycles if self.cycles else 0.0

    @property
    def write_queue_saturation(self) -> float:
        """Fraction of time the write queue was full (§5.1)."""
        return (
            self.write_queue_full_cycles / self.cycles if self.cycles else 0.0
        )

    @property
    def mean_read_latency(self) -> float:
        return self.read_latency.mean

    @property
    def mean_write_latency(self) -> float:
        return self.write_latency.mean

    def effective_bandwidth_gbps(
        self, bus_bytes: int = 8, clock_mhz: int = 400
    ) -> float:
        """Data actually transferred, in GB/s (paper §5.2).

        A 64-bit DDR bus moves ``2 * bus_bytes`` bytes per busy clock
        cycle; utilisation scales the peak accordingly.
        """
        peak = 2 * bus_bytes * clock_mhz * 1e6 / 1e9
        return peak * self.data_bus_utilization

    def report(self) -> Dict[str, float]:
        """Flat dictionary of the headline metrics of a run."""
        rates = self.row_state_rates()
        return {
            "cycles": float(self.cycles),
            "read_latency": self.mean_read_latency,
            "write_latency": self.mean_write_latency,
            "row_hit": rates["hit"],
            "row_conflict": rates["conflict"],
            "row_empty": rates["empty"],
            "addr_bus_util": self.address_bus_utilization,
            "data_bus_util": self.data_bus_utilization,
            "write_queue_saturation": self.write_queue_saturation,
            "completed_reads": float(self.completed_reads),
            "completed_writes": float(self.completed_writes),
            "forwarded_reads": float(self.forwarded_reads),
            "preemptions": float(self.preemptions),
            "piggybacked_writes": float(self.piggybacked_writes),
        }


__all__ = ["Histogram", "LatencyStat", "SimStats", "SourceStats"]
