"""Synthetic main-memory miss-stream generator.

The generator models the structure cache-filtered SPEC CPU2000 miss
streams exhibit (paper §2: "significant spatial and temporal locality
even after being filtered by caches"):

* **Streams** — concurrent sequential walkers (array sweeps).  A
  stream produces runs of accesses marching line by line through rows,
  the source of row locality and burst-formation opportunity.
* **Random pool** — uniformly distributed accesses over the footprint
  (pointer chasing, hash tables), the source of row conflicts.
* **Eviction echo** — writebacks replay the read stream delayed by the
  cache's reuse distance, giving writes their own row locality (what
  write piggybacking exploits, §3.2) while staying out of phase with
  the reads.
* **Instruction gaps** — misses arrive in *clusters*, the way loop
  bodies produce them: within a cluster consecutive misses are a few
  instructions apart (they sit in the ROB together, creating the deep
  outstanding-access queues of the paper's Figure 8), and clusters are
  separated by long computation gaps sized so the overall mean gap is
  1000/APKI.  ``burstiness`` is the probability the next miss stays in
  the current cluster (mean cluster length ``1/(1-burstiness)``).
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Iterator, List

from repro.controller.access import AccessType
from repro.errors import ConfigError
from repro.workloads.trace import TraceRecord

LINE_BYTES = 64


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters describing one synthetic miss stream.

    ``mean_gap`` is the mean instruction distance between consecutive
    main-memory accesses (1000 / accesses-per-kilo-instruction).
    ``stream_frac`` is the probability a read comes from a sequential
    stream rather than the random pool.  ``eviction_lag`` is the reuse
    distance, in lines, at which writebacks echo earlier reads.
    """

    name: str
    mean_gap: float
    write_frac: float
    streams: int
    stream_frac: float
    stride_lines: int = 1
    footprint_mb: int = 64
    eviction_lag: int = 512
    burstiness: float = 0.85
    #: Stream bases are random multiples of this many lines.  Large
    #: power-of-two alignments model page-aligned array allocation:
    #: concurrently swept arrays land in the same banks (different
    #: rows), producing the row conflicts that in-order scheduling
    #: suffers and access reordering repairs (paper Figure 9a).
    alignment_lines: int = 1

    def __post_init__(self) -> None:
        if self.mean_gap <= 0:
            raise ConfigError("mean_gap must be positive")
        if not 0.0 <= self.write_frac < 1.0:
            raise ConfigError("write_frac must lie in [0, 1)")
        if not 0.0 <= self.stream_frac <= 1.0:
            raise ConfigError("stream_frac must lie in [0, 1]")
        if not 0.0 <= self.burstiness < 1.0:
            raise ConfigError("burstiness must lie in [0, 1)")
        if self.streams < 0 or self.stride_lines <= 0:
            raise ConfigError("streams must be >= 0, stride positive")
        if self.footprint_mb <= 0 or self.eviction_lag < 0:
            raise ConfigError("footprint/eviction_lag out of range")
        if self.alignment_lines <= 0:
            raise ConfigError("alignment_lines must be positive")


def iter_trace(
    spec: WorkloadSpec, accesses: int, seed: int = 1
) -> Iterator[TraceRecord]:
    """Yield ``accesses`` miss-trace records for ``spec``.

    Deterministic for a given ``(spec, accesses, seed)`` triple, so
    every mechanism in a comparison replays the identical stream.
    """
    # zlib.crc32 is stable across processes (unlike hash(), which is
    # salted by PYTHONHASHSEED) so traces are reproducible everywhere.
    rng = random.Random(zlib.crc32(spec.name.encode()) * 31 + seed)
    footprint_lines = spec.footprint_mb * (1 << 20) // LINE_BYTES
    align = spec.alignment_lines
    bases = max(footprint_lines // align, 1)
    stream_pos: List[int] = [
        rng.randrange(bases) * align for _ in range(max(spec.streams, 1))
    ]
    evictions: deque = deque()
    # Within a cluster gaps average ~1 instruction; the inter-cluster
    # computation gap is sized so the overall mean stays at mean_gap.
    in_cluster_mean = 1.0
    stay = spec.burstiness
    between = max(
        (spec.mean_gap - stay * in_cluster_mean) / (1.0 - stay), 0.0
    )

    for _ in range(accesses):
        if rng.random() < stay:
            gap = rng.randrange(3)
        else:
            gap = int(rng.expovariate(1.0 / between)) if between else 0

        if evictions and (
            len(evictions) > spec.eviction_lag
            and rng.random() < spec.write_frac
        ):
            line = evictions.popleft()
            yield TraceRecord(gap, AccessType.WRITE, line * LINE_BYTES)
            continue

        if spec.streams and rng.random() < spec.stream_frac:
            index = rng.randrange(spec.streams)
            stream_pos[index] = (
                stream_pos[index] + spec.stride_lines
            ) % footprint_lines
            line = stream_pos[index]
        else:
            line = rng.randrange(footprint_lines)
        evictions.append(line)
        yield TraceRecord(gap, AccessType.READ, line * LINE_BYTES)


def generate_trace(
    spec: WorkloadSpec, accesses: int, seed: int = 1
) -> List[TraceRecord]:
    """Materialise :func:`iter_trace` as a list."""
    return list(iter_trace(spec, accesses, seed))


def reference_stream(
    spec: WorkloadSpec, references: int, seed: int = 1
):
    """Yield raw ``(address, is_write)`` references (pre-cache).

    A denser, higher-locality stream suitable for filtering through
    :class:`~repro.cpu.hierarchy.CacheHierarchy`: each line is touched
    several times (temporal locality the caches will absorb) before
    the walker moves on.
    """
    rng = random.Random(seed)
    footprint_lines = spec.footprint_mb * (1 << 20) // LINE_BYTES
    position = rng.randrange(footprint_lines)
    for _ in range(references):
        if rng.random() < spec.stream_frac:
            position = (position + rng.randrange(2)) % footprint_lines
        else:
            position = rng.randrange(footprint_lines)
        address = position * LINE_BYTES + rng.randrange(0, LINE_BYTES, 8)
        yield address, rng.random() < spec.write_frac


__all__ = ["LINE_BYTES", "WorkloadSpec", "generate_trace", "iter_trace",
           "reference_stream"]
