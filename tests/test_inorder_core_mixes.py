"""Tests for the in-order core model and multiprogrammed mixes (§6)."""

import pytest

from repro.controller.access import AccessType
from repro.controller.system import MemorySystem
from repro.cpu.core import OoOCore
from repro.cpu.inorder import InOrderCore
from repro.errors import ConfigError
from repro.workloads.mixes import (
    CORE_STRIDE_BYTES,
    STANDARD_MIXES,
    interleave_traces,
    make_mix_trace,
)
from repro.workloads.spec2000 import make_benchmark_trace
from repro.workloads.trace import TraceRecord


def _trace(entries):
    return [TraceRecord(g, op, a) for g, op, a in entries]


# ----------------------------------------------------------------- core


def test_inorder_single_outstanding_load(quiet_config):
    system = MemorySystem(quiet_config, "Burst_TH")
    trace = _trace([(0, AccessType.READ, i << 16) for i in range(6)])
    core = InOrderCore(system, trace)
    while not core.done:
        core.step()
        assert system.pool.read_count <= 1
    assert core.loads == 6


def test_inorder_slower_than_ooo_on_clustered_loads(quiet_config):
    trace = make_benchmark_trace("swim", 600, seed=1)
    in_order = InOrderCore(
        MemorySystem(quiet_config, "Burst_TH"), trace
    ).run()
    out_of_order = OoOCore(
        MemorySystem(quiet_config, "Burst_TH"), trace
    ).run()
    assert in_order.mem_cycles > out_of_order.mem_cycles


def test_inorder_counts_and_completion(quiet_config):
    system = MemorySystem(quiet_config, "RowHit")
    trace = _trace(
        [(10, AccessType.READ, 0x10000), (5, AccessType.WRITE, 0x20000)]
    )
    result = InOrderCore(system, trace).run()
    assert result.loads == 1
    assert result.stores == 1
    assert result.instructions == 16  # 10 + 5 gap insts + the load
    assert system.idle


def test_inorder_forwarded_load_does_not_block(quiet_config):
    system = MemorySystem(quiet_config, "Burst_TH")
    trace = _trace(
        [(0, AccessType.WRITE, 0x3000), (0, AccessType.READ, 0x3000)]
    )
    result = InOrderCore(system, trace).run()
    assert system.stats.forwarded_reads == 1
    assert result.loads == 1


# ----------------------------------------------------------------- mixes


def test_interleave_orders_by_instruction_position():
    a = _trace([(10, AccessType.READ, 0x40), (10, AccessType.READ, 0x80)])
    b = _trace([(15, AccessType.READ, 0x40)])
    merged = interleave_traces([a, b])
    # Positions: core0 at 10 and 20, core1 at 15.
    assert [r.gap for r in merged] == [10, 5, 5]
    assert merged[1].address == 0x40 + CORE_STRIDE_BYTES


def test_interleave_preserves_all_records():
    a = make_benchmark_trace("gzip", 50, seed=1)
    b = make_benchmark_trace("mcf", 70, seed=2)
    merged = interleave_traces([a, b])
    assert len(merged) == 120


def test_interleave_address_slices_disjoint():
    a = _trace([(0, AccessType.READ, 0x40)])
    b = _trace([(0, AccessType.READ, 0x40)])
    c = _trace([(0, AccessType.READ, 0x40)])
    merged = interleave_traces([a, b, c])
    addresses = {r.address for r in merged}
    assert len(addresses) == 3


def test_interleave_rejects_empty():
    with pytest.raises(ConfigError):
        interleave_traces([])


def test_make_mix_trace_limits_cores():
    with pytest.raises(ConfigError):
        make_mix_trace(["swim"] * 5, 10)
    with pytest.raises(ConfigError):
        make_mix_trace([], 10)


def test_standard_mixes_run_end_to_end(config):
    trace = make_mix_trace(STANDARD_MIXES["mixed_mix"], 250, seed=1)
    system = MemorySystem(config, "Burst_TH")
    result = OoOCore(system, trace).run()
    assert result.loads + result.stores == len(trace)
    # The mix touches all channels/banks of the system.
    assert system.stats.completed_reads > 0


def test_mix_gaps_never_negative():
    trace = make_mix_trace(("swim", "mcf"), 200, seed=3)
    assert all(r.gap >= 0 for r in trace)
