"""Tests for the transaction scheduler priority (Table 2 / Figure 6).

These drive the BurstScheduler's ``schedule`` directly with crafted
queue states and observe which transaction goes on the command bus.
"""

import pytest

from repro.controller.access import AccessType
from repro.controller.system import MemorySystem
from repro.mapping.base import DecodedAddress
from repro.sim.engine import OpenLoopDriver


def _addr(system, rank=0, bank=0, row=0, col=0):
    return system.mapping.encode(DecodedAddress(0, rank, bank, row, col))


@pytest.fixture
def system(small_config):
    return MemorySystem(small_config, "Burst")


def _run_until_idle(system, limit=5000):
    while not system.idle and system.cycle < limit:
        system.tick()
    assert system.idle


def test_burst_column_accesses_run_back_to_back(system):
    """Priority 1 (last bank first): a burst's columns are contiguous
    on the data bus — spaced exactly data_cycles apart."""
    requests = [
        (0, AccessType.READ, _addr(system, row=1, col=c)) for c in range(4)
    ]
    driver = OpenLoopDriver(system, requests)
    driver.run()
    ends = sorted(a.complete_cycle for a in driver.completed)
    gaps = [b - a for a, b in zip(ends, ends[1:])]
    assert gaps == [system.config.timing.data_cycles] * 3


def test_same_rank_bursts_interleave(system):
    """Priority 2: bursts in two banks of one rank interleave so the
    data bus stays busy — total time is close to the sum of payloads."""
    t = system.config.timing
    requests = []
    for c in range(4):
        requests.append((0, AccessType.READ, _addr(system, bank=0, row=1, col=c)))
        requests.append((0, AccessType.READ, _addr(system, bank=1, row=1, col=c)))
    driver = OpenLoopDriver(system, requests)
    driver.run()
    ends = sorted(a.complete_cycle for a in driver.completed)
    busy = 8 * t.data_cycles
    overhead = t.tRCD + t.tCL + t.tRRD  # pipeline fill
    assert ends[-1] - ends[0] == (8 - 1) * t.data_cycles
    assert ends[-1] <= busy + overhead


def test_overhead_transactions_overlap_data_transfer(system):
    """Priority 3: precharge/activate of one bank issue while another
    bank's data is on the bus, so a conflict behind a burst costs
    little extra."""
    t = system.config.timing
    # A 6-read burst in bank0, plus one conflicting access in bank1
    # (bank1 is first opened to another row by an earlier read).
    requests = [(0, AccessType.READ, _addr(system, bank=1, row=9))]
    requests += [
        (0, AccessType.READ, _addr(system, bank=0, row=1, col=c))
        for c in range(6)
    ]
    requests.append((0, AccessType.READ, _addr(system, bank=1, row=2)))
    driver = OpenLoopDriver(system, requests)
    driver.run()
    conflict = next(
        a for a in driver.completed if a.bank == 1 and a.row == 2
    )
    row9 = next(a for a in driver.completed if a.row == 9)
    # The conflict's precharge (and part of its activate) overlapped
    # the preceding data transfer: measured from the previous bank-1
    # data end, it finishes in less than a full serial row-conflict.
    serial = t.tRP + t.tRCD + t.tCL + t.data_cycles
    assert conflict.complete_cycle - row9.complete_cycle < serial


def test_reads_win_ties_over_writes(system):
    """Within each priority category reads beat writes (Table 2)."""
    w = system.make_access(AccessType.WRITE, _addr(system, bank=0, row=1), 0)
    system.enqueue(w, 0)
    r = system.make_access(AccessType.READ, _addr(system, bank=1, row=1), 0)
    system.enqueue(r, 0)
    _run_until_idle(system)
    assert r.complete_cycle < w.complete_cycle


def test_oldest_first_tie_break_across_banks(system):
    """Two row-empty reads in different banks: the older activates
    first (oldest-first tie break)."""
    younger = system.make_access(
        AccessType.READ, _addr(system, bank=1, row=1), 0
    )
    older = system.make_access(
        AccessType.READ, _addr(system, bank=0, row=1), 0
    )
    older.arrival = -1  # force distinct age
    system.enqueue(older, 0)
    system.enqueue(younger, 0)
    older.arrival = -1
    _run_until_idle(system)
    assert older.complete_cycle < younger.complete_cycle
