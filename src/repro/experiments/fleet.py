"""Fleet mode — adversarial multi-tenant scenario matrix.

Runs every fleet scenario (:data:`repro.workloads.fleet.SCENARIOS`)
against plain ``Burst_TH`` and the two QoS variants, open loop through
:class:`~repro.sim.engine.FleetDriver`, and reports the standard
multiprogram fairness metrics against *solo-run* baselines (each
tenant replayed alone on the identical machine and mechanism):

* weighted speedup — 1.0 means sharing cost nothing;
* max slowdown — the victim tenant's view, the number the QoS
  variants exist to pull down on the aggressor scenarios;
* Jain index over per-tenant service rates — 1.0 is perfectly fair,
  1/K is one tenant monopolising the controller.

Unlike the figure experiments this one drives the open-loop fleet
driver directly (the persistent cell cache is shaped around
closed-loop single-stream runs), so it recomputes on every call;
``REPRO_SCALE`` scales the per-tenant access counts as usual and
``REPRO_ORACLE=1`` attaches the protocol oracle to every run.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.analysis.fairness import (
    jain_index,
    max_slowdown,
    per_source_read_latency,
    per_source_service_rate,
    weighted_speedup,
)
from repro.analysis.tables import format_table
from repro.controller.system import MemorySystem
from repro.errors import ConfigError
from repro.experiments.common import default_seed, scaled_accesses
from repro.sim.config import baseline_config
from repro.sim.engine import FleetDriver
from repro.workloads.fleet import (
    SCENARIOS,
    make_fleet_requests,
    scenario_profiles,
    tenant_requests,
)

#: Mechanisms the matrix crosses the scenarios with: the paper's best
#: single-stream scheduler and the two QoS variants built on it.
MECHANISMS = ("Burst_TH", "Burst_QW", "Burst_QB")

#: Default accesses per tenant before REPRO_SCALE.
ACCESSES = 2000


def _fleet_config(scenario: str, config=None):
    """The machine for ``scenario``: baseline + matching tenant count."""
    base = config if config is not None else baseline_config()
    return replace(base, sources=len(scenario_profiles(scenario)))


def _drain(config, mechanism: str, requests):
    """One open-loop fleet run to drain; returns (cycles, stats)."""
    system = MemorySystem(config, mechanism)
    driver = FleetDriver(system, requests)
    cycles = driver.run()
    return cycles, system.stats


def run_scenario(
    scenario: str,
    mechanism: str,
    accesses: Optional[int] = None,
    config=None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """One (scenario, mechanism) cell with its solo baselines."""
    cfg = _fleet_config(scenario, config)
    n = scaled_accesses(ACCESSES if accesses is None else accesses)
    seed = default_seed() if seed is None else seed
    cycles, stats = _drain(
        cfg, mechanism, make_fleet_requests(scenario, n, cfg, seed)
    )
    shared = per_source_read_latency(stats)
    solo: Dict[int, float] = {}
    for source, profile in enumerate(scenario_profiles(scenario)):
        _, solo_stats = _drain(
            cfg, mechanism, tenant_requests(profile, source, n, cfg, seed)
        )
        baseline = per_source_read_latency(solo_stats)
        if source not in baseline:
            raise ConfigError(
                f"tenant {source} ({profile}) completed no reads solo"
            )
        solo[source] = baseline[source]
    return {
        "cycles": cycles,
        "per_source_read_latency": {str(s): v for s, v in shared.items()},
        "solo_read_latency": {str(s): v for s, v in solo.items()},
        "per_source_service_rate": {
            str(s): v
            for s, v in per_source_service_rate(stats, cycles).items()
        },
        "weighted_speedup": weighted_speedup(solo, shared),
        "max_slowdown": max_slowdown(solo, shared),
        # Jain over per-tenant service *speeds* (1 / mean read
        # latency): in a drain run every tenant's raw service rate is
        # count/cycles, which is flat by construction and says nothing.
        "jain_index": jain_index([1.0 / v for v in shared.values()]),
        "per_source_row_hit_rate": {
            str(s): stat.row_hit_rate
            for s, stat in sorted(stats.per_source.items())
        },
    }


def run(
    scenarios: Optional[Sequence[str]] = None,
    mechanisms: Sequence[str] = MECHANISMS,
    accesses: Optional[int] = None,
    config=None,
    seed: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """The full scenario x mechanism matrix."""
    names = list(scenarios) if scenarios else list(SCENARIOS)
    return {
        scenario: {
            mechanism: run_scenario(
                scenario, mechanism, accesses, config, seed
            )
            for mechanism in mechanisms
        }
        for scenario in names
    }


def render(result) -> str:
    """Render the matrix as one paper-style text table."""
    rows = [
        (
            scenario,
            mechanism,
            cell["weighted_speedup"],
            cell["max_slowdown"],
            cell["jain_index"],
            cell["cycles"],
        )
        for scenario, per_mechanism in result.items()
        for mechanism, cell in per_mechanism.items()
    ]
    return format_table(
        (
            "scenario",
            "mechanism",
            "weighted speedup",
            "max slowdown",
            "jain (1/latency)",
            "cycles",
        ),
        rows,
        title=(
            "Fleet mode: adversarial tenant matrix "
            "(QoS variants vs plain Burst_TH)"
        ),
    )


def main() -> str:
    """Run with defaults and return the rendered text."""
    return render(run())


__all__ = ["ACCESSES", "MECHANISMS", "main", "render", "run",
           "run_scenario"]
