"""Burst scheduling — the paper's contribution (§3).

Burst scheduling is a two-level out-of-order access reordering
mechanism:

* **Access level** (Figures 4 and 5): reads are clustered into
  :class:`~repro.core.burst.Burst` objects — groups of accesses to the
  same row of the same bank — held in per-bank read queues, while
  writes wait in per-bank write queues drawing on the shared pool.
  Each bank's arbiter picks the *ongoing* access, prioritising reads,
  optionally letting reads **preempt** ongoing writes (Burst_RP) and
  **piggybacking** row-hit writes at the end of bursts (Burst_WP), with
  a static write-occupancy **threshold** arbitrating between the two
  (Burst_TH; the paper's best value is 52 of 64).
* **Transaction level** (Table 2 / Figure 6): a per-channel transaction
  scheduler issues one SDRAM command per cycle using a static priority:
  column accesses to the last bank first, then column accesses in the
  last rank, then precharges/activates, then column accesses in other
  ranks — keeping row hits back to back on the data bus while
  overlapping the overhead transactions.
"""

from repro.core.burst import Burst, BurstQueue
from repro.core.dynamic import DynamicThresholdBurstScheduler
from repro.core.scheduler import BurstScheduler
from repro.core.validate import HazardMonitor, attach_hazard_monitor

__all__ = [
    "Burst",
    "BurstQueue",
    "BurstScheduler",
    "DynamicThresholdBurstScheduler",
    "HazardMonitor",
    "attach_hazard_monitor",
]
