"""Synchronous ND-JSON client for the job server.

Deliberately boring: one Unix-socket connection per request, a JSON
object per line in each direction, no threads.  ``watch`` is the one
streaming call — it holds its connection open and yields event dicts
until the job's ``job_done`` event arrives.  Tests, benchmarks and the
``repro-serve`` CLI all go through this class, so the wire protocol
has exactly one Python spelling.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Iterator, List, Optional

from repro.errors import ServiceError


class ServiceClient:
    """Talk to a :class:`~repro.service.server.JobServer` socket."""

    def __init__(self, socket_path: str, timeout: Optional[float] = None):
        self.socket_path = str(socket_path)
        #: Per-read timeout; ``None`` blocks forever (``wait`` on a
        #: long matrix legitimately takes minutes).
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as error:
            sock.close()
            raise ServiceError(
                f"cannot reach server at {self.socket_path}: {error}"
            ) from None
        return sock

    def request(self, payload: dict) -> dict:
        """One request, one reply; raises on ``ok: false``."""
        with self._connect() as sock:
            handle = sock.makefile("rw", encoding="utf-8", newline="\n")
            handle.write(json.dumps(payload) + "\n")
            handle.flush()
            line = handle.readline()
        if not line:
            raise ServiceError("server closed the connection mid-request")
        reply = json.loads(line)
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "request refused"))
        return reply

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def wait_ready(self, timeout: float = 30.0) -> dict:
        """Poll until the server socket answers ``ping`` (startup)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.ping()
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)

    def submit(
        self,
        matrix: Optional[str] = None,
        cells: Optional[List[dict]] = None,
        params: Optional[dict] = None,
        priority: int = 0,
        wait: bool = False,
    ) -> dict:
        """Submit a matrix or explicit cell list.

        With ``wait=True`` the reply only lands once the job has fully
        completed and carries its ``summary``.
        """
        payload: dict = {"op": "submit", "priority": priority}
        if matrix is not None:
            payload["matrix"] = matrix
        if cells is not None:
            payload["cells"] = cells
        if params is not None:
            payload["params"] = params
        if wait:
            payload["wait"] = True
        return self.request(payload)

    def wait(self, job: str) -> dict:
        """Block until ``job`` completes; returns its summary."""
        return self.request({"op": "wait", "job": job})["summary"]

    def watch(self, job: str) -> Iterator[dict]:
        """Yield a job's events (history replay, then live) to done."""
        with self._connect() as sock:
            handle = sock.makefile("rw", encoding="utf-8", newline="\n")
            handle.write(json.dumps({"op": "watch", "job": job}) + "\n")
            handle.flush()
            header = handle.readline()
            if not header:
                raise ServiceError("server closed the watch stream")
            reply = json.loads(header)
            if not reply.get("ok"):
                raise ServiceError(reply.get("error", "watch refused"))
            for line in handle:
                event = json.loads(line)
                yield event
                if event.get("event") == "job_done":
                    return

    def status(self) -> dict:
        return self.request({"op": "status"})

    def query(
        self,
        benchmark: Optional[str] = None,
        mechanism: Optional[str] = None,
        generation: Optional[str] = None,
    ) -> List[dict]:
        """Filtered view of every completed cell the server has seen."""
        reply = self.request({
            "op": "query",
            "benchmark": benchmark,
            "mechanism": mechanism,
            "generation": generation,
        })
        return reply["records"]

    def preempt(self, respawn: bool = True) -> dict:
        """SIGTERM the longest-running busy worker (drain/migration)."""
        return self.request({"op": "preempt", "respawn": respawn})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})


__all__ = ["ServiceClient"]
