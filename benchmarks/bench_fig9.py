"""Regenerates paper Figure 9: row hit/conflict/empty rates and SDRAM
bus utilisation for all eight mechanisms.

Shape targets (§5.2): out-of-order mechanisms raise the row hit rate
over BkInOrder; RowHit/Burst_WP/Burst_TH are among the best hit rates
(they seek row hits in the write queues too); the address bus spread
is small while data bus utilisation varies widely, with Burst_TH near
the top (the paper: 31-42%, Burst_TH highest, bandwidth 2.0 -> 2.7
GB/s).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig9


def test_fig9(benchmark, archive):
    result = run_once(benchmark, fig9.run)
    archive("fig9", fig9.render(result))

    hits = {m: v["row_hit"] for m, v in result.items()}
    for mechanism in ("RowHit", "Burst_TH", "Burst_WP", "Burst"):
        assert hits[mechanism] > hits["BkInOrder"], mechanism
    # Write-queue-searching mechanisms top the hit rates.
    best_three = sorted(hits, key=hits.get, reverse=True)[:4]
    assert {"RowHit", "Burst_WP"} & set(best_three)

    # Rates are proper distributions.
    for values in result.values():
        total = (
            values["row_hit"] + values["row_conflict"] + values["row_empty"]
        )
        assert abs(total - 1.0) < 1e-9

    # Data bus utilisation: Burst_TH beats the in-order baseline and
    # its effective bandwidth improves accordingly.
    assert (
        result["Burst_TH"]["data_bus_util"]
        > result["BkInOrder"]["data_bus_util"]
    )
    assert (
        result["Burst_TH"]["bandwidth_gbps"]
        > result["BkInOrder"]["bandwidth_gbps"]
    )
    # The address bus moves much less than the data bus across
    # mechanisms (paper: ~3% vs 11% spread).
    addr = [v["addr_bus_util"] for v in result.values()]
    data = [v["data_bus_util"] for v in result.values()]
    assert max(addr) - min(addr) < max(data) - min(data) + 0.05
