"""Unit tests for the SDRAM timing parameter sets."""

import dataclasses

import pytest

from repro.dram.timing import DDR2_800, DDR_266, FIG1_DEVICE, TimingParams
from repro.errors import ConfigError


def test_ddr2_800_matches_paper_baseline():
    """Table 3: DDR2 PC2-6400 with 5-5-5 timings, burst length 8."""
    assert DDR2_800.tCL == 5
    assert DDR2_800.tRCD == 5
    assert DDR2_800.tRP == 5
    assert DDR2_800.burst_length == 8
    assert DDR2_800.clock_mhz == 400


def test_data_cycles_is_half_burst_length():
    assert DDR2_800.data_cycles == 4
    assert FIG1_DEVICE.data_cycles == 2


def test_trc_is_tras_plus_trp():
    assert DDR2_800.tRC == DDR2_800.tRAS + DDR2_800.tRP


def test_table1_latency_helpers():
    """Table 1 formulae: hit tCL, empty tRCD+tCL, conflict +tRP."""
    t = DDR2_800
    assert t.row_hit_latency() == t.tCL + t.data_cycles
    assert t.row_empty_latency() == t.tRCD + t.tCL + t.data_cycles
    assert (
        t.row_conflict_latency()
        == t.tRP + t.tRCD + t.tCL + t.data_cycles
    )


def test_paper_section6_cycle_counts():
    """§6: row conflict costs 6 cycles on DDR-266 and 15 on DDR2-800."""
    assert DDR_266.tRP + DDR_266.tRCD + DDR_266.tCL == 6
    assert DDR2_800.tRP + DDR2_800.tRCD + DDR2_800.tCL == 15


def test_presets_have_distinct_names():
    names = {t.name for t in (DDR2_800, DDR_266, FIG1_DEVICE)}
    assert len(names) == 3


def _valid_kwargs(**overrides):
    base = dict(
        name="test",
        tCL=5,
        tRCD=5,
        tRP=5,
        tRAS=18,
        burst_length=8,
        tCWL=4,
        tWR=6,
        tWTR=3,
        tRTP=3,
        tRRD=3,
        tCCD=2,
        tRTRS=2,
    )
    base.update(overrides)
    return base


def test_rejects_nonpositive_core_timings():
    for field in ("tCL", "tRCD", "tRP", "tRAS", "burst_length", "tCWL"):
        with pytest.raises(ConfigError):
            TimingParams(**_valid_kwargs(**{field: 0}))


def test_rejects_negative_secondary_timings():
    for field in ("tWR", "tWTR", "tRTP", "tRRD", "tCCD", "tRTRS"):
        with pytest.raises(ConfigError):
            TimingParams(**_valid_kwargs(**{field: -1}))


def test_rejects_odd_burst_length():
    with pytest.raises(ConfigError):
        TimingParams(**_valid_kwargs(burst_length=5))


def test_rejects_tras_shorter_than_trcd():
    with pytest.raises(ConfigError):
        TimingParams(**_valid_kwargs(tRAS=4, tRCD=5))


def test_rejects_tfaw_below_trrd():
    with pytest.raises(ConfigError):
        TimingParams(**_valid_kwargs(tFAW=2, tRRD=3))


def test_refresh_validation():
    with pytest.raises(ConfigError):
        TimingParams(**_valid_kwargs(tREFI=100, tRFC=0))
    with pytest.raises(ConfigError):
        TimingParams(**_valid_kwargs(tREFI=50, tRFC=60))
    with pytest.raises(ConfigError):
        TimingParams(**_valid_kwargs(tREFI=0, tRFC=10))


def test_timing_params_are_immutable():
    with pytest.raises(dataclasses.FrozenInstanceError):
        DDR2_800.tCL = 4


def test_read_write_to_precharge_windows():
    t = DDR2_800
    assert t.read_to_precharge == max(t.tRTP, t.data_cycles)
    assert t.write_to_precharge == t.tCWL + t.data_cycles + t.tWR
