"""SDRAM command (transaction) types.

The paper calls the unit the memory controller schedules on the SDRAM
buses a *transaction*: bank precharge, row activate or column access
(§2).  We add REFRESH for the auto-refresh maintenance commands the
refresh controller issues.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CommandType(enum.Enum):
    """The four SDRAM transaction kinds."""

    PRECHARGE = "precharge"
    ACTIVATE = "activate"
    READ = "read"
    WRITE = "write"
    REFRESH = "refresh"

    @property
    def is_column(self) -> bool:
        """True for the data-bus-using column accesses (READ/WRITE)."""
        return self in (CommandType.READ, CommandType.WRITE)


@dataclass(frozen=True)
class Command:
    """One SDRAM transaction addressed to a bank of a rank.

    ``row`` is required for ACTIVATE, ``column`` for READ/WRITE;
    PRECHARGE and REFRESH carry neither.  ``access_id`` links the
    transaction back to the memory access it serves (None for refresh
    maintenance commands).
    """

    kind: CommandType
    rank: int
    bank: int
    row: Optional[int] = None
    column: Optional[int] = None
    access_id: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        loc = f"r{self.rank}b{self.bank}"
        if self.kind is CommandType.ACTIVATE:
            return f"ACT {loc} row={self.row}"
        if self.kind.is_column:
            return f"{self.kind.name} {loc} col={self.column}"
        return f"{self.kind.name} {loc}"


__all__ = ["Command", "CommandType"]
