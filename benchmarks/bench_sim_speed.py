"""Simulator throughput: memory cycles simulated per second.

Not a paper figure — this tracks the cost of the reproduction itself
so regressions in the hot scheduling loops are caught.  BkInOrder is
the cheapest mechanism and Burst_TH the most featureful; both are
timed on the same swim trace.
"""

import pytest

from repro.controller.system import MemorySystem
from repro.cpu.core import OoOCore
from repro.experiments.common import default_seed, scaled_accesses
from repro.sim.config import baseline_config
from repro.workloads.spec2000 import make_benchmark_trace


@pytest.mark.parametrize("mechanism", ["BkInOrder", "RowHit", "Burst_TH"])
def test_simulation_throughput(benchmark, mechanism):
    accesses = scaled_accesses(1500)
    trace = make_benchmark_trace("swim", accesses, default_seed())

    def run():
        system = MemorySystem(baseline_config(), mechanism)
        return OoOCore(system, trace).run().mem_cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert cycles > 0
